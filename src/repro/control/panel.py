"""Replicated controller panel: quorum-voted, epoch-fenced recovery.

DESIGN.md §15.  The single :class:`~repro.control.controller.Controller`
is both a single point of failure and a single point of *trust*: one
wrong verdict fences a healthy machine fleet-wide.  The panel replicates
the *sensing* — each :class:`PanelReplica` runs its own
:class:`FailureDetector` over its own gRPC channels and its own
:class:`DbFailoverMonitor` probes — and centralizes the *acting* behind
two guards, in the spirit of P4BFT's comparator voting:

- **Quorum**: a recovery action fires only when a majority of replicas
  independently confirmed the same (kind, target) incident.  One
  crashed, partitioned or lying replica can neither trigger a wrong
  failover nor veto a right one.
- **Epoch fence**: actions are stamped with the leadership epoch; pairs,
  the fencing registry and the KV cluster reject stale stamps, so a
  deposed ex-leader's in-flight decisions die at the receiver.

The recovery policy itself is the shared
:class:`~repro.control.controller.RecoveryActions` mixin — a panel of
one replica therefore behaves bit-identically to the plain controller
(pinned by the chaos-corpus differential test).
"""

from repro.control.channels import GrpcChannel, HealthServer, next_grpc_port
from repro.control.controller import (
    Controller,
    RecoveryActions,
    _container_status,
    _machine_status,
)
from repro.control.db_monitor import DbFailoverMonitor
from repro.control.detector import FailureDetector, FailureReport
from repro.control.fencing import FencingRegistry
from repro.control.quorum import EpochGate, HealthVerdict, LeaderLease, QuorumTracker
from repro.sim.calibration import PANEL_LIE_INTERVAL, PANEL_TICK
from repro.sim.process import Process


class PanelReplica(Controller):
    """One controller replica: an independent witness with its own senses.

    Inherits the plain controller's wiring (detector, channel callbacks)
    but *publishes* confirmed failures to the panel instead of acting on
    them; the panel's quorum decides.
    """

    def __init__(self, panel, index, engine, host, fencing):
        super().__init__(engine, host, fencing=fencing)
        self.panel = panel
        self.index = index
        self.alive = True
        #: bumps on every reboot; stamps verdicts with the detector
        #: incarnation that produced them
        self.incarnation = 1
        self.corruption = None  # None | "accuse_container" | "accuse_machine"
        self._lie_count = 0
        self._lie_task = None

    # -- verdict publication -------------------------------------------

    def _on_failure(self, report):
        if not self.alive:
            return
        if self.corruption is not None:
            # a corrupted monitor's genuine pipeline is untrusted too;
            # it only emits fabrications (see _fabricate)
            return
        self.panel.submit_report(self, report)

    # -- channel wiring (panel-driven; one shared HealthServer) --------

    def _dial_machine(self, machine, port):
        self.machines[machine.name] = machine
        channel = GrpcChannel(
            self.engine,
            self.host,
            machine.name,
            machine.address,
            target_port=port,
            on_unhealthy=lambda ch: self.detector.note_machine_grpc(ch.target_name, False),
            on_healthy=lambda ch: self.detector.note_machine_grpc(ch.target_name, True),
            on_status=lambda ch, status: self.detector.note_machine_status(
                ch.target_name, status
            ),
        )
        channel.start()
        self._machine_channels[machine.name] = channel
        return channel

    def _dial_container(self, container, machine, port):
        channel = GrpcChannel(
            self.engine,
            self.host,
            container.name,
            container.endpoint.address,
            target_port=port,
            on_unhealthy=lambda ch: self.detector.note_container_grpc(
                ch.target_name, False, machine.name
            ),
            on_healthy=lambda ch: self.detector.note_container_grpc(
                ch.target_name, True, machine.name
            ),
        )
        channel.start()
        self._container_channels[container.name] = channel
        return channel

    def _attach_db_monitor(self, cluster):
        self.db_monitor = DbFailoverMonitor(
            self.engine, self.host, cluster,
            on_failover=None, propose=self._propose_db_failover,
        )
        return self.db_monitor

    def _propose_db_failover(self, monitor):
        if not self.alive or self.corruption is not None:
            return
        self.panel.submit_db_verdict(self, monitor)

    # -- fault levers ---------------------------------------------------

    def crash(self):
        if not self.alive:
            return
        self.alive = False
        for channel in self._machine_channels.values():
            channel.stop()
        for channel in self._container_channels.values():
            channel.stop()
        self._machine_channels.clear()
        self._container_channels.clear()
        if self.db_monitor is not None:
            self.db_monitor.stop()
            self.db_monitor = None
        if self._lie_task is not None:
            self._lie_task.stop()
            self._lie_task = None
        self.corruption = None

    def reboot(self):
        if self.alive:
            return
        self.alive = True
        self.incarnation += 1
        # fresh detector: the new incarnation re-learns levels from its
        # own probes (gRPC re-converges within a heartbeat; edge-driven
        # IP SLA feeds refill on their next transition)
        self.detector = FailureDetector(self.engine, self._on_failure)
        for machine, port in self.panel._machine_registry.values():
            self._dial_machine(machine, port)
        for container, machine, port in self.panel._container_registry.values():
            if container.endpoint is not None and container.running:
                self._dial_container(container, machine, port)
        if self.panel._db_cluster is not None:
            self._attach_db_monitor(self.panel._db_cluster)

    def set_corruption(self, mode):
        self.corruption = mode
        if self._lie_task is not None:
            self._lie_task.stop()
            self._lie_task = None
        if mode is not None and self.alive:
            self._lie_task = self.process.every(PANEL_LIE_INTERVAL, self._fabricate)

    def _fabricate(self):
        """Lying-monitor mode: accuse healthy targets, round-robin."""
        if not self.alive or self.corruption is None:
            return
        names = sorted(self.panel.pairs)
        if not names:
            return
        pair = self.panel.pairs[names[self._lie_count % len(names)]]
        self._lie_count += 1
        now = self.engine.now
        if self.corruption == "accuse_machine":
            report = FailureReport(
                "machine_unreachable", pair.primary_machine_name, now, now,
                detail={"fabricated": True},
            )
        else:
            report = FailureReport(
                "container", pair.primary_container_name, now, now,
                detail={"machine": pair.primary_machine_name, "fabricated": True},
            )
        self.panel.submit_report(self, report)


class _DetectorFanout:
    """The panel's ``detector`` facade.

    Shared single-origin feeds (the agent's IP SLA verdicts) fan out to
    every live replica's detector; anything else — mostly test and
    benchmark introspection — reads through to the current leader's.
    """

    def __init__(self, panel):
        self._panel = panel

    def note_machine_agent_ipsla(self, machine_name, reachable):
        for replica in self._panel.replicas:
            if replica.alive:
                replica.detector.note_machine_agent_ipsla(machine_name, reachable)

    def note_container_ipsla(self, container_name, reachable, machine_name):
        for replica in self._panel.replicas:
            if replica.alive:
                replica.detector.note_container_ipsla(
                    container_name, reachable, machine_name
                )

    def __getattr__(self, name):
        return getattr(self._panel.lease.leader().detector, name)


class ControllerPanel(RecoveryActions):
    """3–5 replicated controllers behind one quorum + epoch fence."""

    def __init__(self, engine, hosts, fencing=None, epoch_gate=None):
        self.engine = engine
        self.hosts = list(hosts)
        if not self.hosts:
            raise ValueError("ControllerPanel needs at least one host")
        self.host = self.hosts[0]  # compat: primary management endpoint
        self.process = Process(engine, "controller-panel")
        self.epoch_gate = epoch_gate if epoch_gate is not None else EpochGate()
        # explicit None-check: an empty registry is falsy (it has __len__)
        self.fencing = fencing if fencing is not None else FencingRegistry(
            engine, epoch_gate=self.epoch_gate
        )
        self.replicas = [
            PanelReplica(self, index, engine, host, self.fencing)
            for index, host in enumerate(self.hosts)
        ]
        self.quorum = QuorumTracker(len(self.replicas))
        self.lease = LeaderLease(self.replicas)
        self.epoch_gate.announce(self.lease.epoch)

        self.machines = {}  # name -> HostMachine
        self.pairs = {}  # name -> pair object
        self._machine_registry = {}  # name -> (machine, health port)
        self._container_registry = {}  # name -> (container, machine, port)
        self.records = []
        self.events = []
        self.verdicts = []  # every HealthVerdict ever submitted
        self._recovering = set()
        self._active_recovery = {}
        self.abandoned_records = []
        self.failure_hooks = []
        self.db_monitor = None  # compat handle: replica 0's monitor
        self._db_cluster = None
        self._db_on_failover = None
        #: (replica index, machine name) pairs currently partitioned
        self._partitions = set()
        self.process.every(PANEL_TICK, self._tick)

    # ------------------------------------------------------------------
    # leadership
    # ------------------------------------------------------------------

    def _tick(self):
        self._ensure_leader()

    def _ensure_leader(self):
        if self.lease.ensure():
            self.epoch_gate.announce(self.lease.epoch)
            self.events.append(
                (self.engine.now, "leader-elected",
                 (self.lease.leader_index, self.lease.epoch))
            )

    # -- RecoveryActions hooks -----------------------------------------

    def _action_epoch(self):
        self._ensure_leader()
        return self.lease.epoch

    def _action_still_valid(self, epoch):
        self._ensure_leader()
        return epoch == self.lease.epoch and self.lease.leader().alive

    def _rearm_target(self, name):
        for replica in self.replicas:
            if replica.alive:
                replica.detector.rearm_target(name)
        self.quorum.reset_target(name)

    def _reset_target(self, name):
        for replica in self.replicas:
            if replica.alive:
                replica.detector.reset_target(name)
        self.quorum.reset_target(name)

    def _pair_recovered(self, pair):
        # a closed incident must not block re-detection of a recurrence
        self.quorum.reset_target(pair.primary_container_name)
        backup_name = getattr(pair, "backup_container_name", None)
        if backup_name is not None:
            self.quorum.reset_target(backup_name)

    # ------------------------------------------------------------------
    # registration / wiring (mirrors Controller's surface)
    # ------------------------------------------------------------------

    def register_machine(self, machine, health_port=None):
        self.machines[machine.name] = machine
        port = health_port if health_port is not None else next_grpc_port(self.engine)
        HealthServer(
            self.engine,
            machine.host,
            status_fn=lambda m=machine: _machine_status(m),
            port=port,
        )
        self._machine_registry[machine.name] = (machine, port)
        first = None
        for replica in self.replicas:
            if replica.alive:
                channel = replica._dial_machine(machine, port)
                first = first if first is not None else channel
        return first

    def register_container_channel(self, container, machine):
        if container.endpoint is None:
            raise RuntimeError(
                f"container {container.name} has no endpoint (not booted)"
            )
        port = next_grpc_port(self.engine)
        HealthServer(
            self.engine,
            container.endpoint,
            status_fn=lambda c=container: _container_status(c),
            port=port,
        )
        self._container_registry[container.name] = (container, machine, port)
        first = None
        for replica in self.replicas:
            if replica.alive:
                channel = replica._dial_container(container, machine, port)
                first = first if first is not None else channel
        return first

    def register_pair(self, pair):
        self.pairs[pair.name] = pair

    def attach_database(self, cluster, on_failover=None):
        self._db_cluster = cluster
        self._db_on_failover = on_failover
        for replica in self.replicas:
            if replica.alive:
                replica._attach_db_monitor(cluster)
        self.db_monitor = self.replicas[0].db_monitor
        return self.db_monitor

    # ------------------------------------------------------------------
    # signal intake
    # ------------------------------------------------------------------

    @property
    def detector(self):
        return _DetectorFanout(self)

    def _replica_sees(self, replica, machine_name):
        return replica.alive and (replica.index, machine_name) not in self._partitions

    def docker_event(self, kind, container, detail):
        machine_name = container.machine.name
        for replica in self.replicas:
            if not self._replica_sees(replica, machine_name):
                continue
            if kind == "container-dead":
                replica.detector.note_container_dead(container.name)
            elif kind == "process-dead":
                replica.detector.note_process_dead(
                    container.name, detail, machine_name
                )

    def peer_ipsla_report(self, origin_machine_name, target_name, reachable):
        # gate on the *origin*: a replica partitioned from gw-1 must not
        # hear gw-1's opinion of its peers through the back door
        for replica in self.replicas:
            if self._replica_sees(replica, origin_machine_name):
                replica.detector.note_machine_peer_ipsla(target_name, reachable)

    # ------------------------------------------------------------------
    # verdict intake → quorum → action
    # ------------------------------------------------------------------

    def submit_report(self, replica, report):
        if not replica.alive:
            return
        self.verdicts.append(
            HealthVerdict(replica.index, report.kind, report.target_name,
                          report.confirmed_at, replica.incarnation,
                          report.detail)
        )
        key = ("health", report.kind, report.target_name)
        if self.quorum.submit(key, replica.index):
            self._ensure_leader()
            self._accept_report(report)
        elif self.quorum.acted(key):
            # late confirmation of an incident quorum already accepted: a
            # container failure surfaces through several signals (docker
            # event, supervisor, gRPC heartbeat) and the plain controller
            # logged and dispatched every one (dispatch dedupes on the
            # in-flight recovery).  Mirror that — it is what keeps a
            # panel of one bit-identical to the plain controller.
            self._accept_report(report)

    def _accept_report(self, report):
        # mirrors Controller._on_failure: this is the panel's canonical
        # failure intake once quorum agreed the report is real
        self.events.append((self.engine.now, "failure-report", report))
        for hook in self.failure_hooks:
            hook(report)
        if report.kind == "machine_unreachable":
            self._handle_machine_failure(report)
        else:
            self._handle_container_level_failure(report)

    def submit_db_verdict(self, replica, monitor):
        if not replica.alive:
            return
        cluster = monitor.cluster
        self.verdicts.append(
            HealthVerdict(replica.index, "db_primary_dead",
                          cluster.primary_addr, self.engine.now,
                          replica.incarnation)
        )
        if self.quorum.submit(("db", cluster.epoch), replica.index):
            self._execute_db_failover(monitor)

    def _execute_db_failover(self, monitor):
        self._ensure_leader()
        leader = self.lease.leader()
        executor = monitor
        if leader.alive and leader.db_monitor is not None:
            executor = leader.db_monitor
        new_addr = executor.execute_promotion(controller_epoch=self.lease.epoch)
        if new_addr is None:
            self.events.append(
                (self.engine.now, "action-rejected",
                 ("db", "promote_replica", "stale-epoch"))
            )
            return
        cluster = executor.cluster
        self.events.append(
            (self.engine.now, "database-failover", (new_addr, cluster.epoch))
        )
        for replica in self.replicas:
            if (replica.alive and replica.db_monitor is not None
                    and replica.db_monitor is not executor):
                replica.db_monitor.note_promoted(new_addr, cluster.epoch)
        if self._db_on_failover is not None:
            self._db_on_failover(new_addr, cluster.epoch)

    # ------------------------------------------------------------------
    # fault levers (chaos engine entry points)
    # ------------------------------------------------------------------

    def crash_replica(self, index):
        replica = self.replicas[index]
        if not replica.alive:
            return
        replica.crash()
        self.events.append((self.engine.now, "replica-crash", index))
        self._ensure_leader()

    def reboot_replica(self, index):
        replica = self.replicas[index]
        if replica.alive:
            return
        replica.reboot()
        self.events.append((self.engine.now, "replica-reboot", index))

    def set_corruption(self, index, mode):
        self.replicas[index].set_corruption(mode)
        self.events.append(
            (self.engine.now, "replica-corruption", (index, mode))
        )

    def set_partitioned(self, index, machine_name, partitioned):
        key = (index, machine_name)
        if partitioned:
            self._partitions.add(key)
        else:
            self._partitions.discard(key)
        self.events.append(
            (self.engine.now, "replica-partition",
             (index, machine_name, partitioned))
        )

    def alive_count(self):
        return sum(1 for replica in self.replicas if replica.alive)

    def __repr__(self):
        return (
            f"<ControllerPanel n={len(self.replicas)}"
            f" alive={self.alive_count()} {self.lease!r}>"
        )
