"""The controller plane (§3.2.2, §3.3).

"The controller directly manages the containers on all the servers ...
implemented ... based on Tencent Kubernetes Engine ... logically
centralized but physically distributed.  The controller connects to the
containers using gRPC" and is responsible for orchestration *and*
application-layer management (mapping BGP connections to containers,
monitoring BGP process health).

This package provides the gRPC-style heartbeat channels, IP SLA probes,
the §3.3.3 failure-localization logic (multiple signals, 3-second
confirmation timers), the fencing registry that prevents split-brain,
and the migration orchestration driven by the controller.
"""

from repro.control.channels import GrpcChannel, HealthServer
from repro.control.ipsla import IpSlaProber
from repro.control.detector import FailureDetector, FailureReport
from repro.control.fencing import FencingRegistry
from repro.control.migration import MigrationRecord
from repro.control.controller import Controller

__all__ = [
    "GrpcChannel",
    "HealthServer",
    "IpSlaProber",
    "FailureDetector",
    "FailureReport",
    "FencingRegistry",
    "MigrationRecord",
    "Controller",
]
