"""Migration bookkeeping: the phase timeline Table 1 reports.

Each recovery action (in-place application restart or NSR migration to
the backup container) stamps a :class:`MigrationRecord` with the phase
boundaries the paper's Table 1 columns use:

    failure detection | initiate | migration/reboot | TCP+BGP recovery

The *link downtime* is tracked separately by the benchmark's remote-peer
observer — for TENSOR it must be zero even while these phases run.
"""


class MigrationRecord:
    """Phase timestamps for one recovery action."""

    def __init__(self, failure_kind, target_name, failed_at=None):
        self.failure_kind = failure_kind
        self.target_name = target_name
        self.failed_at = failed_at  # ground truth (set by the injector)
        self.detected_at = None  # detector confirmation
        self.initiated_at = None  # controller decision done, action started
        self.rebooted_at = None  # backup container up / app restarted
        self.recovered_at = None  # TCP repaired + BGP tables restored
        self.abandoned = False  # deadline expired / action rejected
        self.notes = []

    # -- phase durations (Table 1 columns) --------------------------------

    @property
    def detection_time(self):
        if self.failed_at is None or self.detected_at is None:
            return None
        return self.detected_at - self.failed_at

    @property
    def initiation_time(self):
        if self.detected_at is None or self.initiated_at is None:
            return None
        return self.initiated_at - self.detected_at

    @property
    def migration_time(self):
        if self.initiated_at is None or self.rebooted_at is None:
            return None
        return self.rebooted_at - self.initiated_at

    @property
    def recovery_time(self):
        if self.rebooted_at is None or self.recovered_at is None:
            return None
        return self.recovered_at - self.rebooted_at

    @property
    def total_time(self):
        if self.failed_at is None or self.recovered_at is None:
            return None
        return self.recovered_at - self.failed_at

    @property
    def complete(self):
        return self.recovered_at is not None

    def note(self, text):
        self.notes.append(text)

    def as_row(self):
        """Table-1-style row of phase durations (seconds)."""
        return {
            "failure": self.failure_kind,
            "detection": self.detection_time,
            "initiate": self.initiation_time,
            "migration": self.migration_time,
            "recovery": self.recovery_time,
            "total": self.total_time,
        }

    def __repr__(self):
        total = self.total_time
        label = f"{total:.2f}s" if total is not None else (
            "done" if self.complete else "incomplete"
        )
        return f"<MigrationRecord {self.failure_kind} {self.target_name} {label}>"
