"""IP SLA probes (§3.3.2).

"the agent server will send Internet protocol service level agreement
(IP SLA) probes to the containers and their host machines.  Further, the
host machines will also send IP SLA probes to each other to monitor the
inter-connectivity.  The agent server and the host machines will report
their measurement results to the controller through the gRPC channels."

A prober runs on one host and probes many targets; reachability changes
are reported through a callback which the owning entity forwards to the
controller.
"""

from repro.sim.calibration import IPSLA_PROBE_INTERVAL, IPSLA_PROBE_TIMEOUT
from repro.sim.process import Process
from repro.sim.rpc import RpcClient, RpcServer

IPSLA_PORT = 5005


class IpSlaResponder:
    """The echo endpoint every probed entity runs."""

    def __init__(self, engine, host, port=IPSLA_PORT):
        self.rpc = RpcServer(engine, host, port, lambda m, b: {"echo": True}, protocol="ipsla")

    def close(self):
        self.rpc.close()


class IpSlaProber:
    """Probes a set of targets; reports reachability transitions."""

    def __init__(
        self,
        engine,
        host,
        name,
        interval=IPSLA_PROBE_INTERVAL,
        timeout=IPSLA_PROBE_TIMEOUT,
        miss_threshold=2,
        on_change=None,
    ):
        self.engine = engine
        self.host = host
        self.name = name
        self.interval = interval
        self.timeout = timeout
        self.miss_threshold = miss_threshold
        self.on_change = on_change  # fn(prober, target_name, reachable)
        self.process = Process(engine, f"ipsla:{name}")
        self._targets = {}  # name -> dict(client, misses, reachable)
        self._started = False

    def add_target(self, target_name, target_addr, port=IPSLA_PORT):
        client = RpcClient(self.engine, self.host, target_addr, port, protocol="ipsla")
        self._targets[target_name] = {
            "client": client,
            "misses": 0,
            "reachable": True,
            "addr": target_addr,
        }

    def remove_target(self, target_name):
        entry = self._targets.pop(target_name, None)
        if entry is not None:
            entry["client"].close()

    def retarget(self, target_name, new_addr, port=IPSLA_PORT):
        self.remove_target(target_name)
        self.add_target(target_name, new_addr, port)

    def start(self):
        if not self._started:
            self._started = True
            self.process.every(self.interval, self._probe_all)

    def _probe_all(self):
        if not self.host.reachable():
            return  # our own network is down; we cannot observe anything
        for target_name, entry in list(self._targets.items()):
            entry["client"].call(
                "echo",
                {},
                on_reply=lambda _rep, n=target_name: self._mark(n, True),
                on_timeout=lambda n=target_name: self._miss(n),
                timeout=self.timeout,
            )

    def _miss(self, target_name):
        entry = self._targets.get(target_name)
        if entry is None:
            return
        entry["misses"] += 1
        if entry["reachable"] and entry["misses"] >= self.miss_threshold:
            self._mark(target_name, False)

    def _mark(self, target_name, reachable):
        entry = self._targets.get(target_name)
        if entry is None:
            return
        if reachable:
            entry["misses"] = 0
        changed = entry["reachable"] != reachable
        entry["reachable"] = reachable
        if changed and self.on_change is not None:
            self.on_change(self, target_name, reachable)

    def reachable(self, target_name):
        entry = self._targets.get(target_name)
        return entry["reachable"] if entry else None

    def stop(self):
        self.process.kill()
        for entry in self._targets.values():
            entry["client"].close()
        self._targets.clear()
