"""Operator-style "show" commands.

Render the textual state views an operator would pull from a router or
the controller: BGP session summaries, RIB contents, BFD peers, FIB
entries, and the cluster-wide NSR status.  Every function returns a
string (callers print it), built on the same table formatter the
benchmark harness uses.
"""

from repro.metrics.report import format_table


def show_bgp_summary(speaker):
    """`show bgp summary` for one BGP process."""
    rows = []
    for session in speaker.sessions.values():
        uptime = (
            f"{speaker.engine.now - session.established_at:.1f}s"
            if session.established_at is not None and session.established
            else "-"
        )
        rows.append([
            session.config.remote_addr,
            session.config.remote_as,
            session.config.vrf_name,
            session.state.value,
            uptime,
            session.messages_received,
            session.messages_sent,
            len(session.adj_rib_in),
        ])
    header = (
        f"BGP summary — {speaker.config.name} "
        f"(AS {speaker.config.local_as}, router-id {speaker.config.router_id})"
    )
    return format_table(
        ["neighbor", "AS", "VRF", "state", "uptime", "msgs in", "msgs out", "pfx in"],
        rows,
        title=header,
    )


def show_rib(vrf, limit=20):
    """`show bgp vrf <name>`: best routes (truncated at ``limit``)."""
    rows = []
    for route in sorted(vrf.loc_rib.best_routes(), key=lambda r: r.prefix):
        attrs = route.attributes
        rows.append([
            str(route.prefix),
            attrs.next_hop or "-",
            "/".join(str(a) for a in attrs.as_path.as_list()) or "-",
            attrs.local_pref if attrs.local_pref is not None else "-",
            route.source_kind,
            route.peer_id,
        ])
        if len(rows) >= limit:
            rows.append([f"... {len(vrf.loc_rib) - limit} more", "", "", "", "", ""])
            break
    return format_table(
        ["prefix", "next hop", "AS path", "local-pref", "source", "from"],
        rows,
        title=f"VRF {vrf.name}: {len(vrf.loc_rib)} routes",
    )


def show_bfd(process):
    """`show bfd peers` for one BFD process."""
    rows = [
        [
            session.vrf,
            session.remote_addr,
            session.state.name,
            f"{session.tx_interval * 1000:.0f}ms x{session.detect_mult}",
            session.packets_sent,
            session.packets_received,
        ]
        for session in process.sessions.values()
    ]
    return format_table(
        ["VRF", "peer", "state", "timers", "tx", "rx"],
        rows,
        title=f"BFD peers on {process.host.name}",
    )


def show_fib(fib, limit=20):
    """`show ip fib` for one forwarding table."""
    rows = []
    for prefix, entry in sorted(fib.entries().items(), key=lambda kv: kv[0]):
        rows.append([str(prefix), entry.next_hop, f"{entry.programmed_at:.3f}"])
        if len(rows) >= limit:
            rows.append([f"... {len(fib) - limit} more", "", ""])
            break
    return format_table(
        ["prefix", "next hop", "programmed at"],
        rows,
        title=f"FIB {fib.name}: {len(fib)} entries, "
              f"{fib.lookups} lookups ({fib.misses} misses)",
    )


def show_nsr_status(system):
    """Cluster-wide NSR view from the controller's perspective."""
    rows = []
    for name, pair in system.pairs.items():
        sessions = pair.established_session_count()
        backlog = pair.pipeline.backlog() if pair.pipeline else "-"
        rows.append([
            name,
            pair.active_container.name,
            pair.active_machine.name,
            pair.standby_container.name,
            f"{'preheated' if pair.standby_container.running else 'cold'}",
            sessions,
            backlog,
            pair.activations,
        ])
    cluster = format_table(
        ["pair", "active", "machine", "standby", "standby state",
         "sessions", "repl backlog", "migrations"],
        rows,
        title="NSR status",
    )
    lines = [cluster]
    fenced = system.fencing.fenced_machines()
    lines.append(f"fenced machines: {', '.join(fenced) if fenced else 'none'}")
    lines.append(
        f"recoveries completed: {len(system.controller.completed_records())}; "
        f"database records: {len(system.db.store)}"
    )
    return "\n".join(lines)


def show_migration_history(controller):
    """The controller's recovery ledger (Table 1 rows, live)."""
    rows = []
    for record in controller.records:
        rows.append([
            record.failure_kind,
            record.target_name,
            record.detection_time,
            record.initiation_time,
            record.migration_time,
            record.recovery_time,
            record.total_time,
            "done" if record.complete else "IN PROGRESS",
        ])
    return format_table(
        ["failure", "target", "detect", "initiate", "migrate", "recover",
         "total", "status"],
        rows,
        title="Migration history (seconds)",
    )


def show_trace(store, msg_id=None, limit=40):
    """`show trace`: hot-path phase latencies from the causal tracer.

    Without ``msg_id``, a per-phase latency summary over every traced
    update (DESIGN.md §10).  With ``msg_id`` (an update's trace id from
    ``store.update_ids()``), the causally ordered critical path of that
    one message, truncated at ``limit`` spans.
    """
    if store is None:
        return "tracing disabled (construct the system with tracing=True)"
    if msg_id is None:
        rows = []
        for phase, stats in store.phase_summary().items():
            rows.append([
                phase,
                stats["count"],
                f"{stats['mean'] * 1e3:.3f}",
                f"{stats['median'] * 1e3:.3f}",
                f"{stats['max'] * 1e3:.3f}",
            ])
        return format_table(
            ["phase", "spans", "mean ms", "median ms", "max ms"],
            rows,
            title=f"Trace phase summary ({len(store)} spans recorded)",
        )
    chain = store.critical_path(msg_id)
    rows = []
    for span in chain[:limit]:
        duration = "-" if span.end is None else f"{span.duration * 1e3:.3f}"
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(span.attrs.items())
            if k != "links"
        )
        rows.append([
            span.span_id,
            span.name,
            f"{span.begin:.6f}",
            duration,
            attrs[:48],
        ])
    title = f"Critical path for update trace {msg_id}"
    if len(chain) > limit:
        title += f" (first {limit} of {len(chain)} spans)"
    return format_table(
        ["span", "name", "begin", "ms", "attrs"], rows, title=title
    )
