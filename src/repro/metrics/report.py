"""Paper-style table and series formatting for the benchmark harness."""


def _fmt(value, precision=3):
    if value is None:
        return "N/A"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 10000 or abs(value) < 0.001):
            return f"{value:.3g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers, rows, title=None, precision=3):
    """Render an aligned text table (the rows the paper reports)."""
    text_rows = [[_fmt(cell, precision) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(name, xs, ys, x_label="x", y_label="y", precision=3):
    """Render one figure series as aligned columns."""
    rows = list(zip(xs, ys))
    return format_table([x_label, y_label], rows, title=name, precision=precision)
