"""Time-series metric collection on the virtual clock."""


class MetricsCollector:
    """Named time series of (time, value) points."""

    def __init__(self, engine):
        self.engine = engine
        self._series = {}
        self._counters = {}

    def record(self, name, value):
        self._series.setdefault(name, []).append((self.engine.now, value))

    def increment(self, name, amount=1):
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name):
        return self._counters.get(name, 0)

    def series(self, name):
        return list(self._series.get(name, ()))

    def values(self, name):
        return [value for _time, value in self._series.get(name, ())]

    def latest(self, name, default=None):
        points = self._series.get(name)
        return points[-1][1] if points else default

    def sample_every(self, name, interval, fn, duration=None):
        """Periodically record ``fn()`` into series ``name``."""
        stop_at = None if duration is None else self.engine.now + duration

        def tick():
            if stop_at is not None and self.engine.now > stop_at:
                return
            self.record(name, fn())
            self.engine.schedule(interval, tick)

        self.engine.schedule(interval, tick)

    def names(self):
        return sorted(set(self._series) | set(self._counters))
