"""Small statistics helpers (no external dependencies)."""

import math


def mean(values):
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values):
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def stdev(values):
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def summarize(values):
    values = list(values)
    return {
        "count": len(values),
        "mean": mean(values),
        "median": median(values),
        "stdev": stdev(values),
        "min": min(values),
        "max": max(values),
    }
