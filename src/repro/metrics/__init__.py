"""Measurement helpers: collectors, statistics, paper-style reports."""

from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import mean, median, stdev, summarize
from repro.metrics.report import format_series, format_table

__all__ = [
    "MetricsCollector",
    "mean",
    "median",
    "stdev",
    "summarize",
    "format_table",
    "format_series",
]
