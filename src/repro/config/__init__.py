"""Declarative deployment configuration.

Builds a full :class:`~repro.core.system.TensorSystem` (machines, pairs,
optional remote ASes) from a plain dict or a JSON file — the shape an
operator's gateway.json would take.  See :func:`build_system`.
"""

from repro.config.loader import ConfigError, build_system, load_json, validate_spec

__all__ = ["ConfigError", "build_system", "load_json", "validate_spec"]
