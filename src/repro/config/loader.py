"""Spec validation and system construction.

Example spec::

    {
      "seed": 7,
      "hook_technology": "netfilter",          # or "ebpf"
      "remote_db": {"latency": 0.005, "mode": "async"},   # optional
      "machines": [
        {"name": "gw-1", "address": "10.1.0.1"},
        {"name": "gw-2", "address": "10.2.0.1"}
      ],
      "pairs": [
        {
          "name": "pair0",
          "primary": "gw-1", "backup": "gw-2",
          "service_addr": "10.10.0.1",
          "local_as": 65001, "router_id": "10.10.0.1",
          "config_entries": 100, "preheat_backup": true,
          "neighbors": [
            {"remote_addr": "192.0.2.1", "remote_as": 64512,
             "vrf": "v0", "mode": "passive"}
          ]
        }
      ],
      "remotes": [                                # optional lab peers
        {"name": "remote0", "address": "192.0.2.1", "asn": 64512,
         "links": ["gw-1", "gw-2"],
         "peer": {"gateway": "10.10.0.1", "gateway_as": 65001, "vrf": "v0"}}
      ]
    }
"""

import json

from repro.bgp.policy import policy_from_dict
from repro.bgp.speaker import MRAI_MODES
from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.workloads.topology import build_remote_peer


class ConfigError(ValueError):
    """A malformed deployment spec, with a path to the offending field."""

    def __init__(self, path, message):
        super().__init__(f"{path}: {message}")
        self.path = path


def _require(mapping, key, path, types=None):
    if key not in mapping:
        raise ConfigError(f"{path}.{key}", "missing required field")
    value = mapping[key]
    if types is not None and not isinstance(value, types):
        raise ConfigError(
            f"{path}.{key}",
            f"expected {getattr(types, '__name__', types)}, got {type(value).__name__}",
        )
    return value


def validate_spec(spec):
    """Validate a deployment spec; raises :class:`ConfigError`."""
    if not isinstance(spec, dict):
        raise ConfigError("$", "spec must be a mapping")
    machines = _require(spec, "machines", "$", list)
    if not machines:
        raise ConfigError("$.machines", "at least one machine is required")
    machine_names = set()
    for index, machine in enumerate(machines):
        path = f"$.machines[{index}]"
        name = _require(machine, "name", path, str)
        _require(machine, "address", path, str)
        if name in machine_names:
            raise ConfigError(f"{path}.name", f"duplicate machine {name!r}")
        machine_names.add(name)

    pairs = _require(spec, "pairs", "$", list)
    pair_names = set()
    service_addrs = set()
    for index, pair in enumerate(pairs):
        path = f"$.pairs[{index}]"
        name = _require(pair, "name", path, str)
        if name in pair_names:
            raise ConfigError(f"{path}.name", f"duplicate pair {name!r}")
        pair_names.add(name)
        for side in ("primary", "backup"):
            machine = _require(pair, side, path, str)
            if machine not in machine_names:
                raise ConfigError(f"{path}.{side}", f"unknown machine {machine!r}")
        if pair["primary"] == pair["backup"]:
            raise ConfigError(
                path, "primary and backup must be different machines"
                " (the whole point of the pair)"
            )
        addr = _require(pair, "service_addr", path, str)
        if addr in service_addrs:
            raise ConfigError(f"{path}.service_addr", f"duplicate address {addr!r}")
        service_addrs.add(addr)
        _require(pair, "local_as", path, int)
        _require(pair, "router_id", path, str)
        mrai_mode = pair.get("mrai_mode", "per_speaker")
        if mrai_mode not in MRAI_MODES:
            raise ConfigError(f"{path}.mrai_mode", f"unknown mode {mrai_mode!r}")
        if pair.get("mrai") is not None and not isinstance(
            pair["mrai"], (int, float)
        ):
            raise ConfigError(f"{path}.mrai", "must be a number of seconds")
        neighbors = _require(pair, "neighbors", path, list)
        if not neighbors:
            raise ConfigError(f"{path}.neighbors", "a pair needs >= 1 neighbor")
        for n_index, neighbor in enumerate(neighbors):
            n_path = f"{path}.neighbors[{n_index}]"
            _require(neighbor, "remote_addr", n_path, str)
            _require(neighbor, "remote_as", n_path, int)
            mode = neighbor.get("mode", "passive")
            if mode not in ("active", "passive"):
                raise ConfigError(f"{n_path}.mode", f"bad mode {mode!r}")
            if neighbor.get("mrai") is not None and not isinstance(
                neighbor["mrai"], (int, float)
            ):
                raise ConfigError(f"{n_path}.mrai", "must be a number of seconds")
            for knob in ("bfd_tx_interval", "bfd_detect_mult"):
                if neighbor.get(knob) is not None and not isinstance(
                    neighbor[knob], (int, float)
                ):
                    raise ConfigError(f"{n_path}.{knob}", "must be a number")
            for side in ("import_policy", "export_policy"):
                policy = neighbor.get(side)
                if policy is not None:
                    _require(policy, "name", f"{n_path}.{side}", str)

    for index, remote in enumerate(spec.get("remotes", ())):
        path = f"$.remotes[{index}]"
        _require(remote, "name", path, str)
        _require(remote, "address", path, str)
        _require(remote, "asn", path, int)
        for link in remote.get("links", ()):
            if link not in machine_names:
                raise ConfigError(f"{path}.links", f"unknown machine {link!r}")
        peer = remote.get("peer")
        if peer is not None:
            _require(peer, "gateway", f"{path}.peer", str)
            _require(peer, "gateway_as", f"{path}.peer", int)

    tech = spec.get("hook_technology", "netfilter")
    if tech not in ("netfilter", "ebpf"):
        raise ConfigError("$.hook_technology", f"unknown technology {tech!r}")
    remote_db = spec.get("remote_db")
    if remote_db is not None:
        _require(remote_db, "latency", "$.remote_db", (int, float))
        if remote_db.get("mode", "sync") not in ("sync", "async"):
            raise ConfigError("$.remote_db.mode", "must be 'sync' or 'async'")
    return spec


def build_system(spec, start=True):
    """Build (system, pairs, remotes) from a validated spec.

    ``start=True`` also boots every pair and remote; advance the engine
    afterwards to let sessions establish.
    """
    validate_spec(spec)
    system = TensorSystem(
        seed=spec.get("seed", 0),
        verify_reads=spec.get("verify_reads", True),
        hold_acks=spec.get("hold_acks", True),
        hook_technology=spec.get("hook_technology", "netfilter"),
        remote_db=spec.get("remote_db"),
    )
    machines = {}
    for machine_spec in spec["machines"]:
        machines[machine_spec["name"]] = system.add_machine(
            machine_spec["name"], machine_spec["address"]
        )
    pairs = {}
    for pair_spec in spec["pairs"]:
        neighbors = [
            PeerNeighborSpec(
                neighbor["remote_addr"],
                neighbor["remote_as"],
                vrf_name=neighbor.get("vrf", "default"),
                mode=neighbor.get("mode", "passive"),
                hold_time=neighbor.get("hold_time", 90),
                keepalive_interval=neighbor.get("keepalive_interval", 30),
                bfd=neighbor.get("bfd", True),
                bfd_tx_interval=neighbor.get("bfd_tx_interval"),
                bfd_detect_mult=neighbor.get("bfd_detect_mult"),
                mrai=neighbor.get("mrai"),
                import_policy=policy_from_dict(neighbor.get("import_policy")),
                export_policy=policy_from_dict(neighbor.get("export_policy")),
            )
            for neighbor in pair_spec["neighbors"]
        ]
        pairs[pair_spec["name"]] = system.create_pair(
            pair_spec["name"],
            machines[pair_spec["primary"]],
            machines[pair_spec["backup"]],
            service_addr=pair_spec["service_addr"],
            local_as=pair_spec["local_as"],
            router_id=pair_spec["router_id"],
            neighbors=neighbors,
            config_entries=pair_spec.get("config_entries", 100),
            preheat_backup=pair_spec.get("preheat_backup", True),
            mrai=pair_spec.get("mrai"),
            mrai_mode=pair_spec.get("mrai_mode", "per_speaker"),
        )
    remotes = {}
    for remote_spec in spec.get("remotes", ()):
        remote = build_remote_peer(
            system,
            remote_spec["name"],
            remote_spec["address"],
            remote_spec["asn"],
            link_machines=[machines[name] for name in remote_spec.get("links", ())],
        )
        peer = remote_spec.get("peer")
        if peer is not None:
            remote.peer_with(
                peer["gateway"],
                peer["gateway_as"],
                vrf_name=peer.get("vrf", "default"),
                mode=peer.get("mode", "active"),
            )
        remotes[remote_spec["name"]] = remote
    if start:
        for pair in pairs.values():
            pair.start()
        for remote in remotes.values():
            remote.start()
    return system, pairs, remotes


def load_json(path, start=True):
    """Build a system from a JSON spec file."""
    with open(path) as handle:
        spec = json.load(handle)
    return build_system(spec, start=start)
