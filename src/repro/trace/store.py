"""Trace storage and the query API.

Spans are appended at *begin* time in creation order (deterministic under
the deterministic engine), so the store sees open spans too — the
phase-latency oracle uses that to catch a replication span that never
closes.  Queries never mutate; the store is pure observation.

The five pipeline phases of a traced incoming UPDATE (DESIGN.md §10):

    receive      first byte of the message arrived .. decode complete
    replicate    record enqueued .. durable in the database
    ack_release  durability confirmed .. verify-read done, ACK released
    apply        CPU grant .. Loc-RIB reselect + delta persisted
    propagate    outgoing UPDATE generation .. handed to the IO thread

``propagate`` spans belong to the *outgoing* message's own trace (MRAI
batching fans one received UPDATE out to N peers, and one flush can
carry changes from many received UPDATEs), so they reference the
originating message ids through a ``links`` attribute instead of
parentage; :meth:`critical_path` follows both.
"""

from repro.metrics.stats import summarize

#: Span names of the five-phase receive pipeline, in causal order.
PHASES = ("receive", "replicate", "ack_release", "apply", "propagate")

#: Histogram bucket upper bounds (seconds); the last bucket is +inf.
DEFAULT_BUCKETS = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1.0)


class TraceStore:
    """Holds every span a :class:`~repro.trace.tracer.Tracer` records."""

    def __init__(self):
        self._spans = []

    def _add(self, span):
        self._spans.append(span)

    def __len__(self):
        return len(self._spans)

    def clear(self):
        del self._spans[:]

    # -- queries ---------------------------------------------------------

    def spans(self, name=None, trace_id=None, ended=None, **attr_filters):
        """Spans filtered by name, trace id, open/ended state, and exact
        attribute values; returned in deterministic creation order."""
        out = []
        for span in self._spans:
            if name is not None and span.name != name:
                continue
            if trace_id is not None and span.trace_id != trace_id:
                continue
            if ended is True and span.end is None:
                continue
            if ended is False and span.end is not None:
                continue
            if attr_filters:
                attrs = span.attrs
                if any(attrs.get(key) != value
                       for key, value in attr_filters.items()):
                    continue
            out.append(span)
        return out

    def trace(self, trace_id):
        """All spans of one trace, sorted by (begin, span_id)."""
        found = [s for s in self._spans if s.trace_id == trace_id]
        found.sort(key=lambda s: (s.begin, s.span_id))
        return found

    def update_ids(self, **attr_filters):
        """Message ids (root-span trace ids) of traced received messages."""
        return [s.trace_id for s in self.spans("update", **attr_filters)
                if s.parent_id is None]

    def critical_path(self, msg_id):
        """The causally-ordered span chain for one traced message.

        Follows parentage (every span whose ``trace_id`` is ``msg_id``)
        plus ``links`` references (propagate spans whose flush folded the
        message in), sorted by begin time with span-creation order
        breaking ties — parents precede children at an instant because
        they are created first.
        """
        chain = [s for s in self._spans if s.trace_id == msg_id]
        for span in self._spans:
            if span.trace_id == msg_id:
                continue
            links = span.attrs.get("links")
            if links and msg_id in links:
                chain.append(span)
        chain.sort(key=lambda s: (s.begin, s.span_id))
        return chain

    # -- phase latency ---------------------------------------------------

    def durations(self, name, **attr_filters):
        """Ended-span durations for one span name, in creation order."""
        return [s.end - s.begin
                for s in self.spans(name, ended=True, **attr_filters)]

    def phase_summary(self, names=PHASES):
        """{phase: summarize(durations)} for phases with ended spans."""
        out = {}
        for name in names:
            values = self.durations(name)
            if values:
                out[name] = summarize(values)
        return out

    def phase_shape(self, names=PHASES):
        """The *shape* of a run's phase activity, for coverage keys
        (DESIGN.md §13): ``(phase, log2-bucketed span count)`` pairs over
        phases that recorded at least one ended span.

        Bucketing by ``count.bit_length()`` (1, 2-3, 4-7, ... spans)
        makes the shape insensitive to small count jitter while still
        separating "a couple of replications" from "hundreds" — exactly
        the granularity novelty search wants.  Durations are deliberately
        excluded: they are bit-identical per seed but any change to the
        shape of the schedule perturbs them, which would make *every*
        mutant look novel.
        """
        shape = []
        for name in names:
            count = len(self.spans(name, ended=True))
            if count:
                shape.append((name, count.bit_length()))
        return tuple(shape)

    def histogram(self, name, buckets=DEFAULT_BUCKETS):
        """[(upper_bound_or_inf, count)] over ended-span durations."""
        counts = [0] * (len(buckets) + 1)
        for value in self.durations(name):
            for index, bound in enumerate(buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
        bounds = list(buckets) + [float("inf")]
        return list(zip(bounds, counts))

    def export_phase_metrics(self, collector, names=PHASES,
                             prefix="trace.phase"):
        """Feed per-phase durations into a MetricsCollector as the series
        ``{prefix}.{phase}`` (one sample per ended span)."""
        for name in names:
            for span in self.spans(name, ended=True):
                collector.record(f"{prefix}.{name}", span.end - span.begin)
        return collector

    # -- the delayed-ACK phase invariant ---------------------------------

    def delayed_ack_violations(self, slop=1e-9):
        """Spans that contradict §3.1.1: an ACK observable on the wire
        before the replication write it acknowledges became durable.

        Two checks: (1) every ``ack_release`` span must begin at or after
        its trace's ``replicate`` span ended (and that span must exist
        and be closed); (2) every released ``nfq.hold`` span annotated
        with the message that freed it must end at or after that
        message's ``replicate`` span ended.
        """
        replicate_end = {}
        for span in self._spans:
            if span.name == "replicate":
                replicate_end[span.trace_id] = span.end
        problems = []
        for span in self._spans:
            if span.name == "ack_release":
                end = replicate_end.get(span.trace_id, None)
                if end is None:
                    problems.append(
                        f"ack_release span #{span.span_id} (trace "
                        f"{span.trace_id}) has no closed replicate span"
                    )
                elif span.begin < end - slop:
                    problems.append(
                        f"ack_release span #{span.span_id} begins at "
                        f"{span.begin:.6f}, before its replicate span "
                        f"closed at {end:.6f}"
                    )
            elif span.name == "nfq.hold" and span.end is not None:
                released_by = span.attrs.get("released_by")
                if released_by is None:
                    continue
                end = replicate_end.get(released_by)
                if end is None:
                    problems.append(
                        f"nfq.hold span #{span.span_id} released by trace "
                        f"{released_by}, which has no closed replicate span"
                    )
                elif span.end < end - slop:
                    problems.append(
                        f"nfq.hold span #{span.span_id} released at "
                        f"{span.end:.6f}, before trace {released_by} was "
                        f"durable at {end:.6f}"
                    )
        return problems
