"""Causal span tracing on the simulated clock.

A :class:`Span` records begin/end *virtual* timestamps, parent/child
causality and arbitrary attributes (peer, connection, stream position,
ACK number).  A :class:`Tracer` is installed on an :class:`Engine` as its
trace hook: the engine then captures the ambient (current) span when an
event is scheduled and restores it when the event fires, so causality
flows through every ``engine.schedule`` hop — timers, network delivery,
CPU charges — without the instrumented code threading context by hand.
Hot paths that need precise phase boundaries (the TENSOR receive
pipeline) additionally pass spans explicitly.

Disabled mode is the default everywhere: :data:`NULL_TRACER` is a
singleton whose ``begin``/``complete``/``event`` return the shared
:data:`NULL_SPAN` and allocate nothing, so a production-shaped benchmark
run pays one attribute load and one ``None`` check per instrumentation
site (``bench_hotpath.py`` gates the engine's share at <5%).

Identity model: a span created without a parent starts a new *trace*
whose id is the span's own id; children inherit the trace id.  The root
``update`` span of a traced BGP message doubles as the message id used
by :meth:`TraceStore.critical_path`.
"""

import itertools
from contextlib import contextmanager

#: Sentinel default for ``begin(parent=...)``: use the ambient span.
AMBIENT = object()


class Span:
    """One traced operation on the virtual clock."""

    __slots__ = ("span_id", "trace_id", "parent_id", "name", "begin", "end",
                 "attrs", "_tracer")

    def __init__(self, tracer, span_id, trace_id, parent_id, name, begin, attrs):
        self._tracer = tracer
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.begin = begin
        self.end = None
        self.attrs = attrs

    @property
    def duration(self):
        """Seconds from begin to end; None while the span is open."""
        if self.end is None:
            return None
        return self.end - self.begin

    def annotate(self, **attrs):
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs):
        """Close the span at the current virtual instant.  Idempotent:
        a second ``finish`` changes neither the end time nor the attrs
        (the first closer's verdict wins)."""
        if self.end is None:
            self.end = self._tracer.engine.now
            if attrs:
                self.attrs.update(attrs)
        return self

    def __bool__(self):
        return True

    def __repr__(self):
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return (f"<Span #{self.span_id} {self.name} trace={self.trace_id}"
                f" [{self.begin:.6f}..{end}]>")


class _NullSpan:
    """The shared no-op span returned by the disabled tracer."""

    __slots__ = ()
    span_id = 0
    trace_id = 0
    parent_id = None
    name = ""
    begin = 0.0
    end = 0.0
    duration = 0.0
    attrs = {}

    def annotate(self, **attrs):
        return self

    def finish(self, **attrs):
        return self

    def __bool__(self):
        return False

    def __repr__(self):
        return "<NullSpan>"


NULL_SPAN = _NullSpan()


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Disabled tracing: every operation is a shared-singleton no-op."""

    __slots__ = ()
    enabled = False
    current = None
    store = None

    def begin(self, name, parent=AMBIENT, **attrs):
        return NULL_SPAN

    def complete(self, name, begin, parent=AMBIENT, **attrs):
        return NULL_SPAN

    def event(self, name, parent=AMBIENT, **attrs):
        return NULL_SPAN

    def begin_from(self, context_ref, name, **attrs):
        return NULL_SPAN

    def span(self, name, parent=AMBIENT, **attrs):
        return _NULL_CONTEXT

    def activate(self, span):
        return _NULL_CONTEXT

    def context(self):
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Records spans against one engine's virtual clock.

    Constructing a tracer installs it as the engine's trace hook, turning
    on ambient-context capture in ``Engine.schedule``.
    """

    enabled = True

    def __init__(self, engine, store=None):
        from repro.trace.store import TraceStore

        self.engine = engine
        self.store = store if store is not None else TraceStore()
        self.current = None  # the ambient span (engine restores per event)
        self._ids = itertools.count(1)
        engine.set_trace_hook(self)

    # -- span creation ---------------------------------------------------

    def begin(self, name, parent=AMBIENT, **attrs):
        """Open a span.  ``parent`` defaults to the ambient span; pass an
        explicit span for hand-threaded causality or ``None`` to force a
        new trace root."""
        if parent is AMBIENT:
            parent = self.current
        span_id = next(self._ids)
        if parent is not None and parent:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = span_id
            parent_id = None
        span = Span(self, span_id, trace_id, parent_id, name,
                    self.engine.now, attrs)
        self.store._add(span)
        return span

    def complete(self, name, begin, parent=AMBIENT, **attrs):
        """Record a span that began at ``begin`` and ends now."""
        span = self.begin(name, parent=parent, **attrs)
        span.begin = begin
        span.end = self.engine.now
        return span

    def event(self, name, parent=AMBIENT, **attrs):
        """Record an instantaneous (zero-duration) span."""
        return self.complete(name, self.engine.now, parent=parent, **attrs)

    def begin_from(self, context_ref, name, **attrs):
        """Open a span whose parent is a *serialized* context reference —
        the ``(trace_id, span_id)`` tuple :meth:`context` produces, as
        carried across process boundaries in RPC frame metadata."""
        span_id = next(self._ids)
        if context_ref is not None:
            trace_id, parent_id = context_ref
        else:
            trace_id, parent_id = span_id, None
        span = Span(self, span_id, trace_id, parent_id, name,
                    self.engine.now, attrs)
        self.store._add(span)
        return span

    def context(self):
        """The ambient span as propagatable metadata, or None."""
        current = self.current
        if current is None:
            return None
        return (current.trace_id, current.span_id)

    # -- ambient-context management --------------------------------------

    @contextmanager
    def span(self, name, parent=AMBIENT, **attrs):
        """Context manager: open a span, make it ambient, close on exit."""
        opened = self.begin(name, parent=parent, **attrs)
        previous = self.current
        self.current = opened
        try:
            yield opened
        finally:
            self.current = previous
            opened.finish()

    @contextmanager
    def activate(self, span):
        """Make ``span`` ambient for the duration (no open/close)."""
        previous = self.current
        self.current = span
        try:
            yield span
        finally:
            self.current = previous


def tracer_of(engine):
    """The tracer installed on ``engine``, or :data:`NULL_TRACER`."""
    hook = getattr(engine, "_trace_hook", None)
    return hook if hook is not None else NULL_TRACER
