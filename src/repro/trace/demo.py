"""Standalone tracing demo: ``make trace-demo`` (DESIGN.md §10).

Builds a traced two-remote TENSOR gateway, pushes real UPDATE traffic
through the NSR hot path, and prints what the causal tracer saw: the
per-phase latency summary, one update's full critical path, and the
delayed-ACK invariant check.  The same fixture builder backs the
Fig. 5(a) per-phase latency benchmark.
"""

from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.sim import DeterministicRandom
from repro.workloads.topology import build_remote_peer
from repro.workloads.updates import RouteGenerator


def build_traced_system(seed=7, routes=40, neighbors=2):
    """A converged, traced TensorSystem with ``neighbors`` remotes in a
    shared VRF, each originating ``routes`` routes — so every update
    re-propagates to every other remote and all five hot-path phases
    (receive, replicate, ack_release, apply, propagate) appear in the
    trace."""
    system = TensorSystem(seed=seed, tracing=True)
    engine = system.engine
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    specs = [
        PeerNeighborSpec(
            f"192.0.2.{i + 1}", 64512 + i, vrf_name="v0", mode="passive"
        )
        for i in range(neighbors)
    ]
    pair = system.create_pair(
        "pair0", m1, m2, service_addr="10.10.0.1", local_as=65001,
        router_id="10.10.0.1", neighbors=specs,
    )
    remotes = []
    for i in range(neighbors):
        remote = build_remote_peer(
            system, f"remote{i}", f"192.0.2.{i + 1}", 64512 + i,
            link_machines=[m1, m2],
        )
        session = remote.peer_with(
            "10.10.0.1", 65001, vrf_name="v0", mode="active"
        )
        remotes.append((remote, session))
    pair.start()
    for remote, _session in remotes:
        remote.start()
    engine.advance(10.0)

    # Originate in paced waves rather than one burst: the breakdown
    # should show steady-state phase latencies, not the transient
    # coalescer backlog a single 40-route dump creates.
    rand = DeterministicRandom(seed)
    gens = [
        RouteGenerator(
            rand.fork(f"demo{i}"), 64512 + i, next_hop=f"192.0.2.{i + 1}"
        )
        for i in range(neighbors)
    ]
    wave = 8
    sent = 0
    wave_index = 0
    while sent < routes:
        batch = min(wave, routes - sent)
        for i, (remote, session) in enumerate(remotes):
            routes_batch = gens[i].routes(
                batch, base=f"{10 + i}.{wave_index * 16}.0.0"
            )
            remote.speaker.originate_many("v0", routes_batch)
            remote.speaker.readvertise(session)
        sent += batch
        wave_index += 1
        engine.advance(2.0)
    engine.advance(5.0)
    return system, pair, remotes


def main():
    from repro.metrics.show import show_trace

    system, _pair, _remotes = build_traced_system()
    store = system.trace_store
    print(show_trace(store))
    print()

    ids = store.update_ids(msg="UpdateMessage")
    print(f"{len(ids)} updates traced end to end; critical path of the "
          f"first:")
    print(show_trace(store, msg_id=ids[0], limit=12))
    print()

    violations = store.delayed_ack_violations()
    print(f"delayed-ACK invariant (§3.1.1): "
          f"{len(violations)} violations across {len(store)} spans")
    for problem in violations[:5]:
        print(f"  {problem}")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
