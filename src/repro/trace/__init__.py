"""Causal tracing for the NSR hot path (DESIGN.md §10)."""

from repro.trace.store import DEFAULT_BUCKETS, PHASES, TraceStore
from repro.trace.tracer import (
    AMBIENT,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    tracer_of,
)

__all__ = [
    "AMBIENT",
    "DEFAULT_BUCKETS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "PHASES",
    "Span",
    "TraceStore",
    "Tracer",
    "tracer_of",
]
