"""TENSOR: Lightweight BGP Non-Stop Routing (SIGCOMM 2023) — reproduction.

The package is organized bottom-up (see DESIGN.md for the full map):

- :mod:`repro.sim` — discrete-event engine, network fabric, calibration;
- :mod:`repro.tcpsim` — from-scratch TCP with repair support;
- :mod:`repro.netfilter` — hook chains + NFQUEUE;
- :mod:`repro.kvstore` — the replicated key-value store (Redis stand-in);
- :mod:`repro.bgp` — a complete BGP-4 implementation;
- :mod:`repro.bfd` — Bidirectional Forwarding Detection;
- :mod:`repro.containers` — containers, hosts, the VXLAN underlay;
- :mod:`repro.control` — controller, probes, failure localization;
- :mod:`repro.core` — TENSOR itself (replication, tcp_queue, recovery,
  splitting, agent, full-system assembly);
- :mod:`repro.baselines` — FRRouting/GoBGP/BIRD profiles + cost models;
- :mod:`repro.failures` / :mod:`repro.workloads` / :mod:`repro.metrics` —
  injection, workload generation and measurement.

The most convenient entry point is :class:`repro.core.TensorSystem`.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "tcpsim",
    "netfilter",
    "kvstore",
    "bgp",
    "bfd",
    "containers",
    "control",
    "core",
    "baselines",
    "failures",
    "workloads",
    "metrics",
]
