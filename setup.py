"""Legacy-install shim.

Environments without the `wheel` package cannot build PEP 517 editable
installs; this shim enables `pip install -e . --no-use-pep517
--no-build-isolation` (and plain `python setup.py develop`).  All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
