#!/usr/bin/env python3
"""Quickstart: BGP non-stop routing in ~60 lines.

Builds a miniature Tencent-style gateway — two host machines, one
primary/backup container pair, the controller, agent and database — and
peers it with a remote AS.  The remote AS advertises routes, we kill the
primary container, and NSR migrates the session to the backup with zero
remote-visible downtime.

Run:  python examples/quickstart.py
"""

import random

from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.failures import FailureInjector
from repro.workloads.topology import DowntimeObserver, build_remote_peer
from repro.workloads.updates import RouteGenerator


def main():
    # 1. The gateway cluster: controller + database + agent come built in.
    system = TensorSystem(seed=1)
    machine_a = system.add_machine("gw-1", "10.1.0.1")
    machine_b = system.add_machine("gw-2", "10.2.0.1")

    # 2. One container pair serving one peering AS (AS 64512).
    pair = system.create_pair(
        "pair0",
        machine_a,
        machine_b,
        service_addr="10.10.0.1",
        local_as=65001,
        router_id="10.10.0.1",
        neighbors=[PeerNeighborSpec("192.0.2.1", 64512, vrf_name="v0", mode="passive")],
    )

    # 3. The remote AS's border router (an FRR-profile speaker + BFD).
    remote = build_remote_peer(
        system, "remote-as", "192.0.2.1", 64512,
        link_machines=[machine_a, machine_b],
    )
    session = remote.peer_with("10.10.0.1", 65001, vrf_name="v0", mode="active")

    pair.start()
    remote.start()
    system.run(10.0)
    print(f"[t={system.engine.now:5.1f}s] session {session.state.value}, "
          f"BFD {list(remote.bfd.session_states().values())[0].name}")

    # 4. The remote advertises 1000 routes; TENSOR replicates while learning.
    generator = RouteGenerator(random.Random(7), 64512, next_hop="192.0.2.1")
    remote.speaker.originate_many("v0", generator.routes(1000))
    remote.speaker.readvertise(session)
    system.run(5.0)
    print(f"[t={system.engine.now:5.1f}s] gateway learned "
          f"{len(pair.speaker.vrfs['v0'].loc_rib)} routes; "
          f"database holds {len(system.db.store)} records")

    # 5. Watch the remote's view while we kill the primary container.
    observer = DowntimeObserver(system.engine, session,
                                remote.speaker.vrfs["v0"], expect_routes=1000)
    observer.start()
    print(f"[t={system.engine.now:5.1f}s] killing primary container "
          f"{pair.active_container.name} on {pair.active_machine.name} ...")
    FailureInjector(system).container_failure(pair)
    system.run(30.0)
    observer.stop()

    record = system.controller.completed_records()[0]
    print(f"[t={system.engine.now:5.1f}s] NSR migration complete:")
    print(f"   active container : {pair.active_container.name} "
          f"on {pair.active_machine.name}")
    print(f"   phases           : initiate {record.initiation_time:.2f}s, "
          f"migrate {record.migration_time:.2f}s, "
          f"recover {record.recovery_time:.2f}s")
    print(f"   remote session   : {session.state.value} (never dropped)")
    print(f"   link downtime    : {observer.total_downtime:.3f}s")
    assert observer.total_downtime == 0.0
    assert len(pair.speaker.vrfs["v0"].loc_rib) == 1000
    print("zero-downtime failover: OK")


if __name__ == "__main__":
    main()
