#!/usr/bin/env python3
"""Failover drill: run every Table 1 failure class and print the phases.

Reproduces the paper's operational failure matrix on a small deployment:
application crash (E1), container death (E2), host machine death (E3),
host NIC failure (E5) — plus the transient-jitter case that must NOT
trigger a migration.

Run:  python examples/failover_drill.py
"""

import random

from repro.baselines import baseline_recovery_row
from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.failures import FailureInjector
from repro.metrics import format_table
from repro.workloads.topology import DowntimeObserver, build_remote_peer
from repro.workloads.updates import RouteGenerator

ROUTES = 500


def build(seed):
    system = TensorSystem(seed=seed)
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    pair = system.create_pair(
        "pair0", m1, m2, service_addr="10.10.0.1", local_as=65001,
        router_id="10.10.0.1",
        neighbors=[PeerNeighborSpec("192.0.2.1", 64512, vrf_name="v0",
                                    mode="passive")],
    )
    remote = build_remote_peer(system, "remote0", "192.0.2.1", 64512,
                               link_machines=[m1, m2])
    session = remote.peer_with("10.10.0.1", 65001, vrf_name="v0", mode="active")
    pair.start()
    remote.start()
    system.run(10.0)
    generator = RouteGenerator(random.Random(seed), 64512, next_hop="192.0.2.1")
    remote.speaker.originate_many("v0", generator.routes(ROUTES))
    remote.speaker.readvertise(session)
    system.run(5.0)
    observer = DowntimeObserver(system.engine, session,
                                remote.speaker.vrfs["v0"], expect_routes=ROUTES)
    observer.start()
    return system, pair, session, observer


def drill(kind, seed):
    system, pair, session, observer = build(seed)
    injector = FailureInjector(system)
    if kind == "application":
        injector.application_failure(pair)
    elif kind == "container":
        injector.container_failure(pair)
    elif kind == "host_machine":
        injector.host_machine_failure(system.machines["gw-1"])
    elif kind == "host_network":
        injector.host_network_failure(system.machines["gw-1"])
    system.run(45.0)
    injector.stamp_records()
    observer.stop()
    record = system.controller.completed_records()[0]
    return record, observer.total_downtime, session.established


def main():
    rows = []
    for kind in ("application", "container", "host_machine", "host_network"):
        record, downtime, established = drill(kind, seed=hash(kind) % 97)
        baseline = baseline_recovery_row(kind)
        baseline_total = (
            f"~{baseline['total']:.0f}s offline" if baseline["total"] else "N/A"
        )
        rows.append([
            kind,
            f"{record.detection_time:.2f}",
            f"{record.initiation_time:.2f}",
            f"{record.migration_time:.2f}",
            f"{record.recovery_time:.2f}",
            f"{record.total_time:.2f}",
            f"{downtime:.2f}",
            "yes" if established else "NO",
            baseline_total,
        ])
    print(format_table(
        ["failure", "detect", "initiate", "migrate", "recover", "total",
         "downtime", "session held", "baseline"],
        rows,
        title="Failover drill (all times in seconds of virtual clock)",
    ))

    # Bonus: transient jitter below the 3 s confirmation window -> no action.
    system, pair, session, observer = build(seed=99)
    FailureInjector(system).transient_host_network_failure(
        system.machines["gw-1"], duration=1.5
    )
    system.run(20.0)
    observer.stop()
    migrated = bool(system.controller.completed_records())
    print(f"\ntransient 1.5 s network jitter: migrated={migrated} "
          f"(expected False), downtime={observer.total_downtime:.2f}s")
    assert not migrated and observer.total_downtime == 0.0


if __name__ == "__main__":
    main()
