#!/usr/bin/env python3
"""Declarative deployment: a gateway cluster from a JSON-style spec.

The same shape an operator's gateway.json would take — machines, pairs,
neighbors, interception technology, optional disaster-recovery store —
validated and built by :mod:`repro.config`.

Run:  python examples/declarative_gateway.py
"""

import random

from repro.config import build_system
from repro.failures import FailureInjector
from repro.workloads.updates import RouteGenerator

GATEWAY_SPEC = {
    "seed": 11,
    "hook_technology": "ebpf",                       # §5 future work, built
    "remote_db": {"latency": 0.005, "mode": "async"},  # DR copy, §5
    "machines": [
        {"name": "gw-1", "address": "10.1.0.1"},
        {"name": "gw-2", "address": "10.2.0.1"},
    ],
    "pairs": [
        {
            "name": "acme-transit",
            "primary": "gw-1", "backup": "gw-2",
            "service_addr": "10.10.0.1",
            "local_as": 65001, "router_id": "10.10.0.1",
            "neighbors": [
                {"remote_addr": "192.0.2.1", "remote_as": 64512,
                 "vrf": "acme", "mode": "passive"},
            ],
        },
        {
            "name": "globex-peering",
            "primary": "gw-2", "backup": "gw-1",   # spread primaries
            "service_addr": "10.10.1.1",
            "local_as": 65001, "router_id": "10.10.1.1",
            "neighbors": [
                {"remote_addr": "192.0.2.2", "remote_as": 64513,
                 "vrf": "globex", "mode": "passive"},
            ],
        },
    ],
    "remotes": [
        {"name": "acme", "address": "192.0.2.1", "asn": 64512,
         "links": ["gw-1", "gw-2"],
         "peer": {"gateway": "10.10.0.1", "gateway_as": 65001, "vrf": "acme"}},
        {"name": "globex", "address": "192.0.2.2", "asn": 64513,
         "links": ["gw-1", "gw-2"],
         "peer": {"gateway": "10.10.1.1", "gateway_as": 65001, "vrf": "globex"}},
    ],
}


def main():
    system, pairs, remotes = build_system(GATEWAY_SPEC)
    system.run(10.0)
    print("deployment up:")
    for name, pair in pairs.items():
        print(f"  {name}: active on {pair.active_machine.name}, "
              f"{pair.established_session_count()} session(s), "
              f"interception={pair.stack.nfqueue.technology}")

    # push routes from both remote ASes
    for index, (name, remote) in enumerate(remotes.items()):
        gen = RouteGenerator(random.Random(index), remote.asn,
                             next_hop=remote.host.address)
        session = list(remote.speaker.sessions.values())[0]
        remote.speaker.originate_many(session.config.vrf_name, gen.routes(250))
        remote.speaker.readvertise(session)
    system.run(5.0)
    for name, pair in pairs.items():
        routes = sum(len(vrf.loc_rib) for vrf in pair.speaker.vrfs.values())
        print(f"  {name}: learned {routes} routes")

    # kill BOTH primaries at once: the pairs migrate independently, in
    # opposite directions (each machine backs the other's pairs)
    injector = FailureInjector(system)
    for pair in pairs.values():
        injector.container_failure(pair)
    system.run(40.0)
    print("after simultaneous container failures:")
    for name, pair in pairs.items():
        session = list(remotes[name.split("-")[0]].speaker.sessions.values())[0]
        routes = sum(len(vrf.loc_rib) for vrf in pair.speaker.vrfs.values())
        print(f"  {name}: active on {pair.active_machine.name}, "
              f"remote session {session.state.value}, {routes} routes")
        assert session.established and routes == 250
    print("both pairs migrated with sessions intact")


if __name__ == "__main__":
    main()
