#!/usr/bin/env python3
"""BGP splitting and joint containers (§3.2.4).

Plans a container split for a set of client/AS peerings ("each BGP
container ... handles one AS or one client"), then demonstrates the
joint-container pattern live: two member BGP processes learn different
paths for the same prefix, and the iBGP-meshed joint container sees both
and picks the global optimum.

Run:  python examples/split_containers.py
"""

from repro.bgp import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.prefixes import Prefix
from repro.core.splitting import PeeringSpec, plan_split
from repro.metrics import format_table
from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack


def plan_demo():
    peerings = [
        PeeringSpec("acme", 64512, "192.0.2.1"),
        PeeringSpec("acme", 64513, "192.0.2.2"),
        PeeringSpec("globex", 64514, "192.0.2.3", share_group="anycast-cdn"),
        PeeringSpec("initech", 64515, "192.0.2.4", share_group="anycast-cdn"),
        PeeringSpec("umbrella", 64516, "192.0.2.5"),
    ]
    plan = plan_split(peerings, max_peers_per_container=2)
    rows = [
        [a.name, ", ".join(f"{p.client}/AS{p.asn}" for p in a.peerings),
         ", ".join(a.vrf_names())]
        for a in plan.assignments
    ]
    print(format_table(["container", "peerings", "VRFs"], rows,
                       title="Split plan (one client per container)"))
    for joint in plan.joints:
        print(f"joint container {joint.name}: iBGP mesh with "
              f"{', '.join(joint.member_names)} (share group "
              f"{joint.share_group!r})")
    print()
    return plan


def joint_routing_demo():
    engine = Engine()
    network = Network(engine, DeterministicRandom(3))
    network.enable_fabric(latency=5e-5)
    speakers = {}
    for name, addr in (("member-1", "10.0.1.1"), ("member-2", "10.0.1.2"),
                       ("joint", "10.0.1.3")):
        host = network.add_host(name, addr)
        speakers[name] = BgpSpeaker(
            engine, TcpStack(engine, host), SpeakerConfig(name, 65001, addr)
        )
        speakers[name].add_vrf("shared")
    speakers["joint"].add_peer(
        PeerConfig("10.0.1.1", 65001, vrf_name="shared", mode="passive"))
    speakers["joint"].add_peer(
        PeerConfig("10.0.1.2", 65001, vrf_name="shared", mode="passive"))
    speakers["member-1"].add_peer(
        PeerConfig("10.0.1.3", 65001, vrf_name="shared", mode="active"))
    speakers["member-2"].add_peer(
        PeerConfig("10.0.1.3", 65001, vrf_name="shared", mode="active"))
    for speaker in speakers.values():
        speaker.start()
    engine.advance(5.0)

    # both members learn the same prefix from their own external peers,
    # with different preferences (e.g. one path is a backup transit)
    prefix = Prefix.parse("203.0.113.0/24")
    speakers["member-1"].originate(
        "shared", prefix,
        PathAttributes(as_path=AsPath.sequence(64512), next_hop="10.0.1.1",
                       local_pref=100),
    )
    speakers["member-2"].originate(
        "shared", prefix,
        PathAttributes(as_path=AsPath.sequence(64999), next_hop="10.0.1.2",
                       local_pref=300),
    )
    engine.advance(5.0)

    joint_rib = speakers["joint"].vrfs["shared"].loc_rib
    best = joint_rib.best(prefix)
    candidates = joint_rib.candidates(prefix)
    print(f"joint container sees {len(candidates)} paths for {prefix}:")
    for peer_id, route in sorted(candidates.items()):
        marker = "  <== best (global optimum)" if route is best else ""
        print(f"   via {peer_id}: local-pref "
              f"{route.attributes.local_pref}{marker}")
    assert best.attributes.local_pref == 300


def main():
    plan_demo()
    joint_routing_demo()


if __name__ == "__main__":
    main()
