#!/usr/bin/env python3
"""Fleet operations: the §4.4 operational picture.

Generates the per-link traffic distribution (Fig. 7(a)) and the two-year
adoption/impact timeline (Fig. 7(b)) for a Tencent-scale fleet: 400
servers, 6000 peering ASes, 31000 BGP connections.

Run:  python examples/fleet_operations.py
"""

from repro.metrics import format_table
from repro.sim import DeterministicRandom
from repro.sim.calibration import (
    FLEET_BGP_CONNECTIONS,
    FLEET_PEERING_ASES,
    FLEET_SERVERS,
)
from repro.workloads.operations import OperationalModel, default_adoption_curve
from repro.workloads.traffic import TrafficModel, percentile


def human(bps):
    for unit, scale in (("Tbps", 1e12), ("Gbps", 1e9), ("Mbps", 1e6), ("Kbps", 1e3)):
        if bps >= scale:
            return f"{bps / scale:.1f} {unit}"
    return f"{bps:.0f} bps"


def traffic_picture(rng):
    model = TrafficModel(rng.stream("traffic"))
    samples = model.sample_links(FLEET_PEERING_ASES * 5)
    print(f"fleet: {FLEET_SERVERS} servers, {FLEET_PEERING_ASES} peering ASes, "
          f"{FLEET_BGP_CONNECTIONS} BGP connections")
    print(f"per-link average throughput: mean {human(sum(samples) / len(samples))}, "
          f"median {human(percentile(samples, 0.5))}, "
          f"P[>1 Gbps] {sum(1 for s in samples if s > 1e9) / len(samples):.0%}")
    rows = [[f"p{int(f * 100)}", human(percentile(samples, f))]
            for f in (0.10, 0.50, 0.90, 0.99)]
    print(format_table(["percentile", "throughput"], rows))
    # the paper's one-minute number: a single average link outage
    mean_bps = sum(samples) / len(samples)
    print(f"one-minute downtime on an average link impacts "
          f"{mean_bps * 60 / 8 / 1e9:.0f} GB (paper: 277 GB)\n")


def adoption_picture(rng):
    model = OperationalModel(rng.stream("ops"), links=FLEET_PEERING_ASES)
    adoption = default_adoption_curve(FLEET_PEERING_ASES)
    impacted = model.monthly_impacted_bytes(adoption)
    rows = []
    for month in range(0, len(adoption), 3):
        year, mon = 2020 + month // 12, month % 12 + 1
        rows.append([f"{year}-{mon:02d}", adoption[month],
                     f"{impacted[month] / 1e12:.1f}"])
    print(format_table(
        ["month", "ASes on TENSOR", "impacted data (TB)"],
        rows,
        title="Two-year adoption timeline (quarterly samples)",
    ))
    zero_since = next(i for i, v in enumerate(impacted) if v == 0 and adoption[i] > 0
                      and all(x == 0 for x in impacted[i:]))
    year, mon = 2020 + zero_since // 12, zero_since % 12 + 1
    print(f"link downtime reaches (and stays at) zero from {year}-{mon:02d} "
          f"-- full migration, tripled update frequency notwithstanding")


def main():
    rng = DeterministicRandom(2023)
    traffic_picture(rng)
    adoption_picture(rng)


if __name__ == "__main__":
    main()
