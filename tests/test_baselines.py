"""Baseline daemons: profiles, packing behaviour, recovery model."""


import pytest

from repro.baselines import (
    BirdDaemon,
    FrrDaemon,
    GoBgpDaemon,
    NsrEnabledRouter,
    baseline_recovery_row,
)
from repro.sim import DeterministicRandom, Engine, Network
from repro.workloads.updates import RouteGenerator
from repro.sim.rand import DeterministicRandom


@pytest.fixture
def net(engine):
    return Network(engine, DeterministicRandom(12))


def _daemon_pair(engine, net, cls):
    a = cls(engine, net, "gw", "10.0.0.1", 65001)
    b = FrrDaemon(engine, net, "peer", "10.0.0.2", 64512)
    a.connect_to(b.host)
    a.add_vrf("v1")
    b.add_vrf("v1")
    a.add_peer("10.0.0.2", 64512, vrf_name="v1", mode="passive")
    sess = b.add_peer("10.0.0.1", 65001, vrf_name="v1", mode="active")
    a.start()
    b.start()
    engine.advance(3.0)
    return a, b, sess


@pytest.mark.parametrize("cls", [FrrDaemon, GoBgpDaemon, BirdDaemon])
def test_daemons_interoperate(engine, net, cls):
    a, b, sess = _daemon_pair(engine, net, cls)
    assert sess.established
    gen = RouteGenerator(DeterministicRandom(1), 64512, next_hop="10.0.0.2")
    b.speaker.originate_many("v1", gen.routes(200))
    b.speaker.readvertise(sess)
    engine.advance(3.0)
    assert len(a.speaker.vrfs["v1"].loc_rib) == 200


def test_gobgp_has_no_update_packing(engine, net):
    gobgp = GoBgpDaemon(engine, net, "g", "10.0.0.5", 65001)
    assert gobgp.speaker.config.update_packing is False
    frr = FrrDaemon(engine, net, "f", "10.0.0.6", 65001)
    assert frr.speaker.config.update_packing is True


def test_gobgp_sends_one_update_per_route(engine, net):
    a, b, sess = _daemon_pair(engine, net, GoBgpDaemon)
    gen = RouteGenerator(DeterministicRandom(2), 65001, next_hop="10.0.0.1")
    a.speaker.originate_many("v1", gen.uniform_routes(50))
    gw_session = next(iter(a.speaker.sessions.values()))
    a.speaker.readvertise(gw_session)
    engine.advance(3.0)
    # 50 routes -> 50 separate UPDATE messages (plus OPEN/KEEPALIVE)
    assert gw_session.messages_sent >= 50 + 2


def test_frr_packs_shared_attributes(engine, net):
    a, b, sess = _daemon_pair(engine, net, FrrDaemon)
    gen = RouteGenerator(DeterministicRandom(2), 65001, next_hop="10.0.0.1")
    a.speaker.originate_many("v1", gen.uniform_routes(50))
    gw_session = next(iter(a.speaker.sessions.values()))
    messages_before = gw_session.messages_sent
    a.speaker.readvertise(gw_session)
    engine.advance(3.0)
    assert gw_session.messages_sent - messages_before <= 2  # one packed UPDATE


def test_crash_leads_to_peer_withdrawal(engine, net):
    a, b, sess = _daemon_pair(engine, net, FrrDaemon)
    gen = RouteGenerator(DeterministicRandom(3), 65001, next_hop="10.0.0.1")
    a.speaker.originate_many("v1", gen.routes(20))
    gw_session = next(iter(a.speaker.sessions.values()))
    a.speaker.readvertise(gw_session)
    engine.advance(3.0)
    learned = [r for r in b.speaker.vrfs["v1"].loc_rib.best_routes()
               if r.source_kind == "ebgp"]
    assert len(learned) == 20
    a.crash()
    engine.advance(200.0)  # hold timer expires
    assert not sess.established
    learned = [r for r in b.speaker.vrfs["v1"].loc_rib.best_routes()
               if r.source_kind == "ebgp"]
    assert learned == []  # link considered broken: all routes withdrawn


def test_profiles_have_calibrated_costs():
    from repro.sim.calibration import RECEIVE_COST_PER_UPDATE

    assert RECEIVE_COST_PER_UPDATE["frr"] < RECEIVE_COST_PER_UPDATE["bird"]
    assert RECEIVE_COST_PER_UPDATE["bird"] <= RECEIVE_COST_PER_UPDATE["gobgp"]
    assert RECEIVE_COST_PER_UPDATE["gobgp"] < RECEIVE_COST_PER_UPDATE["tensor"]


# -- recovery model (Table 1 brackets) ----------------------------------------


def test_baseline_recovery_rows_match_table1():
    app = baseline_recovery_row("application")
    assert app["total"] == pytest.approx(27.0)  # paper: ~30
    machine = baseline_recovery_row("host_machine")
    assert machine["total"] == pytest.approx(230.0)  # paper: ~240
    network = baseline_recovery_row("host_network")
    assert network["total"] == pytest.approx(25.0)  # paper: ~25


def test_baseline_container_row_is_na():
    row = baseline_recovery_row("container")
    assert row["total"] is None


def test_workload_factor_scales_bgp_recovery():
    light = baseline_recovery_row("application", workload_factor=1.0)
    heavy = baseline_recovery_row("application", workload_factor=10.0)
    assert heavy["recovery"] == 10 * light["recovery"]
    assert heavy["detection"] == light["detection"]


# -- NSR-enabled router model ---------------------------------------------------


def test_nsr_router_sla_class():
    router = NsrEnabledRouter()
    assert "Online" in router.recovery_class
    assert router.link_downtime_seconds("host_machine") == 0.0
    assert router.recovery_time_seconds("application") < 10


def test_nsr_router_costs_table2():
    router = NsrEnabledRouter()
    dev = router.development_cost()
    assert dev["labor_man_months"] == 500
    assert router.deployment_cost_usd() == 15_000
    assert router.maintenance_man_hours_per_month() == 110
