"""The checked-in fuzz regression corpus (tests/fuzz_corpus/manifest.json).

The manifest pins a coverage-guided campaign: the chaos-corpus coverage
baseline (seeds 0-12 in their tier-1 configurations) plus the fuzz specs
that reached coverage the fixed corpus never produces.  Tier-1 verifies
the acceptance property structurally (>= 3 novel keys), replays a
sample of entries to confirm their coverage keys still reproduce, and
spot-checks the stored baseline against freshly computed chaos profiles
so the "novel" claim cannot go stale silently.
"""

import json
import pathlib

import pytest

from repro.failures.chaos import generate_schedule, run_schedule
from repro.fuzz import coverage_key, profile_from_chaos, run_fuzz_spec, run_profile
from repro.fuzz.loop import load_manifest, manifest_entries
from repro.fuzz.spec import validate_fuzz_spec

MANIFEST = pathlib.Path(__file__).parent / "fuzz_corpus" / "manifest.json"


@pytest.fixture(scope="module")
def manifest():
    assert MANIFEST.exists(), "run `make fuzz-corpus` to regenerate"
    return load_manifest(str(MANIFEST))


def test_manifest_is_canonical_json(manifest):
    raw = MANIFEST.read_text()
    assert raw == json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def test_corpus_reaches_at_least_three_novel_coverage_keys(manifest):
    """The PR's acceptance bar: >= 3 coverage keys (oracle/phase/
    topology shapes) the fixed chaos corpus never produces."""
    baseline_keys = set(manifest["baseline"])
    novel = [entry for entry in manifest["entries"]
             if entry["coverage_key"] not in baseline_keys]
    assert len(novel) >= 3
    for entry in novel:
        assert entry["novel"] is True
    # the novelty is structural, not hash luck: fuzz-only topology
    # dimensions (multi-pair splits, non-default MRAI modes) appear
    assert any(e["profile"]["topology"]["pairs"] > 1 for e in novel)
    assert any(e["profile"]["topology"]["mrai_mode"] != "per_speaker"
               for e in novel)


def test_manifest_specs_are_valid_and_self_consistent(manifest):
    for spec, key, profile in manifest_entries(manifest):
        validate_fuzz_spec(spec)
        assert coverage_key(profile) == key


def test_replayed_entries_reproduce_their_coverage_keys(manifest):
    """Replay a sample of corpus entries end to end; the recomputed
    coverage key must match the manifest (full replay: `python -m
    repro.fuzz --replay tests/fuzz_corpus/manifest.json`)."""
    entries = manifest_entries(manifest)
    assert entries
    for spec, expected_key, expected_profile in entries[:2]:
        result = run_fuzz_spec(spec, tracing=True)
        assert result.first_violation is None, result.summary()
        assert result.completed
        profile = run_profile(result)
        assert profile == expected_profile
        assert coverage_key(profile) == expected_key


def test_corpus_replay_identical_under_dict_prefix_store(manifest):
    """§14 differential: a corpus entry replayed with the brute-force
    DictPrefixStore Loc-RIB backend must reproduce the trie run's
    digest, verdict, profile and coverage key bit-for-bit."""
    from repro.bgp.rib import DictPrefixStore, use_prefix_store

    spec, expected_key, expected_profile = manifest_entries(manifest)[0]
    trie_result = run_fuzz_spec(spec, tracing=True)
    with use_prefix_store(DictPrefixStore):
        dict_result = run_fuzz_spec(spec, tracing=True)
    assert dict_result.summary() == trie_result.summary()
    assert dict_result.system.rib_digest() == trie_result.system.rib_digest()
    assert run_profile(dict_result) == run_profile(trie_result)
    assert run_profile(trie_result) == expected_profile
    assert coverage_key(run_profile(dict_result)) == expected_key


def test_baseline_spot_check_matches_fresh_chaos_profiles(manifest):
    """The stored chaos baseline must equal freshly computed profiles
    (spot check two plain seeds; the full baseline regenerates with
    `make fuzz-corpus`)."""
    by_seed = {entry["seed"]: key
               for key, entry in manifest["baseline"].items()}
    for seed in (0, 1):
        result = run_schedule(generate_schedule(seed))
        key = coverage_key(profile_from_chaos(result))
        assert by_seed.get(seed) == key
