"""Prefix parsing, wire format, containment, and the trie."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp import Prefix, PrefixTrie


def test_parse_ipv4():
    p = Prefix.parse("10.1.2.0/24")
    assert p.length == 24
    assert p.afi == Prefix.AFI_IPV4
    assert str(p) == "10.1.2.0/24"


def test_parse_ipv4_host_route_default_length():
    assert Prefix.parse("192.0.2.1").length == 32


def test_parse_masks_host_bits():
    assert str(Prefix.parse("10.1.2.3/24")) == "10.1.2.0/24"


def test_parse_ipv6():
    p = Prefix.parse("2001:db8::/32")
    assert p.afi == Prefix.AFI_IPV6
    assert p.length == 32
    assert str(p) == "2001:db8:0:0:0:0:0:0/32"


def test_parse_ipv6_full_form():
    p = Prefix.parse("2001:0db8:0000:0000:0000:0000:0000:0001/128")
    assert p.length == 128


def test_bad_addresses_rejected():
    for bad in ("10.1.2", "10.1.2.256", "1.2.3.4.5", "g::1", "::1::2"):
        with pytest.raises(ValueError):
            Prefix.parse(bad)


def test_bad_length_rejected():
    with pytest.raises(ValueError):
        Prefix.parse("10.0.0.0/33")


def test_wire_roundtrip_v4():
    p = Prefix.parse("203.0.113.0/25")
    wire = p.to_wire()
    assert len(wire) == p.wire_size == 1 + 4
    decoded, offset = Prefix.from_wire(wire, 0)
    assert decoded == p
    assert offset == len(wire)


def test_wire_minimal_octets():
    assert len(Prefix.parse("10.0.0.0/8").to_wire()) == 2
    assert len(Prefix.parse("10.128.0.0/9").to_wire()) == 3
    assert len(Prefix.parse("0.0.0.0/0").to_wire()) == 1


def test_wire_truncated_raises():
    with pytest.raises(ValueError):
        Prefix.from_wire(b"\x18\x0a", 0)  # /24 needs 3 octets


def test_contains():
    outer = Prefix.parse("10.0.0.0/8")
    inner = Prefix.parse("10.1.0.0/16")
    assert outer.contains(inner)
    assert not inner.contains(outer)
    assert outer.contains(outer)
    assert not outer.contains(Prefix.parse("11.0.0.0/16"))


def test_contains_rejects_cross_afi():
    assert not Prefix.parse("0.0.0.0/0").contains(Prefix.parse("::/0"))


def test_ordering_and_hash():
    a = Prefix.parse("10.0.0.0/8")
    b = Prefix.parse("10.0.0.0/16")
    assert a < b
    assert len({a, b, Prefix.parse("10.0.0.0/8")}) == 2


@given(value=st.integers(min_value=0, max_value=2**32 - 1),
       length=st.integers(min_value=0, max_value=32))
def test_wire_roundtrip_property_v4(value, length):
    p = Prefix(value, length)
    decoded, _ = Prefix.from_wire(p.to_wire(), 0)
    assert decoded == p


@given(value=st.integers(min_value=0, max_value=2**128 - 1),
       length=st.integers(min_value=0, max_value=128))
def test_wire_roundtrip_property_v6(value, length):
    p = Prefix(value, length, Prefix.AFI_IPV6)
    decoded, _ = Prefix.from_wire(p.to_wire(), 0, Prefix.AFI_IPV6)
    assert decoded == p


@given(text=st.from_regex(r"(25[0-5]|2[0-4][0-9]|1?[0-9]?[0-9])"
                          r"(\.(25[0-5]|2[0-4][0-9]|1?[0-9]?[0-9])){3}/(3[0-2]|[12]?[0-9])",
                          fullmatch=True))
def test_parse_str_roundtrip_property(text):
    p = Prefix.parse(text)
    assert Prefix.parse(str(p)) == p


# -- trie ---------------------------------------------------------------------


def test_trie_exact_and_remove():
    trie = PrefixTrie()
    p = Prefix.parse("10.0.0.0/8")
    trie.insert(p, "A")
    assert trie.exact(p) == "A"
    assert len(trie) == 1
    assert trie.remove(p)
    assert trie.exact(p) is None
    assert not trie.remove(p)
    assert len(trie) == 0


def test_trie_longest_match():
    trie = PrefixTrie()
    trie.insert(Prefix.parse("10.0.0.0/8"), "eight")
    trie.insert(Prefix.parse("10.1.0.0/16"), "sixteen")
    assert trie.longest_match(Prefix.parse("10.1.2.0/24")) == (16, "sixteen")
    assert trie.longest_match(Prefix.parse("10.2.0.0/24")) == (8, "eight")
    assert trie.longest_match(Prefix.parse("11.0.0.0/24")) is None


def test_trie_default_route_matches_everything():
    trie = PrefixTrie()
    trie.insert(Prefix.parse("0.0.0.0/0"), "default")
    assert trie.longest_match(Prefix.parse("192.0.2.1/32")) == (0, "default")


def test_trie_update_in_place():
    trie = PrefixTrie()
    p = Prefix.parse("10.0.0.0/8")
    trie.insert(p, "one")
    trie.insert(p, "two")
    assert trie.exact(p) == "two"
    assert len(trie) == 1


def test_trie_v4_v6_independent():
    trie = PrefixTrie()
    trie.insert(Prefix.parse("0.0.0.0/0"), "v4")
    trie.insert(Prefix.parse("::/0"), "v6")
    assert trie.longest_match(Prefix.parse("1.2.3.4/32"))[1] == "v4"
    assert trie.longest_match(Prefix.parse("2001:db8::1/128"))[1] == "v6"


# ----------------------------------------------------------------------
# length-0 / max-length edge cases (DESIGN.md §14: the radix trie leans
# on these invariants at its root and leaf extremes)
# ----------------------------------------------------------------------

def test_default_route_contains_everything_including_itself():
    default = Prefix.parse("0.0.0.0/0")
    assert default.contains(default)
    assert default.contains(Prefix.parse("0.0.0.0/32"))
    assert default.contains(Prefix.parse("255.255.255.255/32"))
    assert default.contains(Prefix.parse("128.0.0.0/1"))
    # ...but nothing contains the default except another default
    assert not Prefix.parse("0.0.0.0/1").contains(default)
    assert not Prefix.parse("0.0.0.0/32").contains(default)


def test_v6_default_route_contains_everything():
    default = Prefix.parse("::/0")
    assert default.contains(Prefix.parse("2001:db8::/32"))
    assert default.contains(Prefix.parse("::1/128"))
    assert not default.contains(Prefix.parse("0.0.0.0/0"))  # cross-AFI


def test_host_route_contains_only_itself():
    host = Prefix.parse("192.0.2.1/32")
    assert host.contains(host)
    assert not host.contains(Prefix.parse("192.0.2.1/31"))
    assert not host.contains(Prefix.parse("192.0.2.0/32"))
    v6_host = Prefix.parse("2001:db8::1/128")
    assert v6_host.contains(v6_host)
    assert not v6_host.contains(Prefix.parse("2001:db8::/127"))


def test_bit_at_full_range_and_bounds():
    host = Prefix.parse("255.255.255.255/32")
    assert [host.bit_at(i) for i in (0, 31)] == [1, 1]
    lone = Prefix.parse("0.0.0.1/32")
    assert lone.bit_at(31) == 1
    assert sum(lone.bit_at(i) for i in range(32)) == 1
    top = Prefix.parse("128.0.0.0/1")
    assert top.bit_at(0) == 1
    with pytest.raises(IndexError):
        host.bit_at(32)
    with pytest.raises(IndexError):
        host.bit_at(-1)
    with pytest.raises(IndexError):
        Prefix.parse("::/0").bit_at(128)
    assert Prefix.parse("::1/128").bit_at(127) == 1


def test_common_prefix_len_edges():
    default = Prefix.parse("0.0.0.0/0")
    host = Prefix.parse("0.0.0.0/32")
    # capped by the shorter operand
    assert default.common_prefix_len(host) == 0
    assert host.common_prefix_len(host) == 32
    # identical values, differing lengths: capped by the shorter
    assert Prefix.parse("10.0.0.0/8").common_prefix_len(
        Prefix.parse("10.0.0.0/24")) == 8
    # first-bit divergence
    assert Prefix.parse("0.0.0.0/32").common_prefix_len(
        Prefix.parse("128.0.0.0/32")) == 0
    # explicit limit caps further
    assert host.common_prefix_len(host, limit=5) == 5
