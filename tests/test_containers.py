"""Containers, host machines, resources, underlay bindings."""

import pytest

from repro.containers import (
    Container,
    ContainerState,
    HostMachine,
    ProcessMonitor,
    ResourceModel,
    Underlay,
)
from repro.sim import DeterministicRandom, Engine, Network
from repro.sim.calibration import (
    CONFIG_LOAD_TIME_PER_ENTRY,
    CONTAINER_BASE_BOOT_TIME,
)


@pytest.fixture
def machine(engine, network):
    network.enable_fabric()
    return HostMachine(engine, network, "gw-1", "10.1.0.1")


def test_boot_time_scales_with_configs(engine, machine):
    small = machine.create_container("small", config_entries=10)
    large = machine.create_container("large", config_entries=1000)
    assert large.boot_time() - small.boot_time() == pytest.approx(
        990 * CONFIG_LOAD_TIME_PER_ENTRY
    )


def test_monolithic_config_load_is_20_minutes():
    """~100K configs -> ~20 minutes (the §3.2.1 motivation)."""
    engine = Engine()
    network = Network(engine, DeterministicRandom(0))
    machine = HostMachine(engine, network, "m", "10.1.0.1")
    monolith = machine.create_container("monolith", config_entries=100_000)
    assert 1100 < monolith.boot_time() < 1500  # ~20 min


def test_container_start_transitions_and_callback(engine, machine):
    container = machine.create_container("c1", config_entries=100)
    ready = []
    container.start(on_running=ready.append)
    assert container.state is ContainerState.BOOTING
    engine.run_until_idle()
    assert container.state is ContainerState.RUNNING
    assert ready == [container]
    assert container.endpoint is not None
    assert container.boot_count == 1


def test_preheated_boot_is_fast(engine, machine):
    container = machine.create_container("c1", config_entries=1000)
    assert container.boot_time(preheated=True) < 0.5
    assert container.boot_time() > 2.0


def test_start_on_dead_machine_raises(engine, machine):
    container = machine.create_container("c1")
    machine.fail()
    with pytest.raises(RuntimeError):
        container.start()


def test_machine_failure_kills_running_containers(engine, machine):
    container = machine.create_container("c1")
    container.start()
    engine.run_until_idle()
    machine.fail()
    assert container.state is ContainerState.FAILED
    assert not container.endpoint.reachable()


def test_container_fail_crashes_processes(engine, machine):
    container = machine.create_container("c1")
    container.start()
    engine.run_until_idle()

    class FakeProc:
        alive = True
        def crash(self):
            self.alive = False

    proc = container.add_process("bgp", FakeProc())
    container.fail()
    assert not proc.alive
    assert container.any_process_dead()


def test_container_network_failure_keeps_processes(engine, machine):
    container = machine.create_container("c1")
    container.start()
    engine.run_until_idle()

    class FakeProc:
        alive = True

    container.add_process("bgp", FakeProc())
    container.fail_network()
    assert container.state is ContainerState.RUNNING
    assert not container.endpoint.reachable()
    assert not container.any_process_dead()


def test_process_alive_handles_running_attribute(engine, machine):
    container = machine.create_container("c1")

    class RunningProc:
        running = True

    container.add_process("bfd", RunningProc())
    assert container.process_alive("bfd")
    assert not container.process_alive("missing")


def test_process_monitor_reports_container_death(engine, machine):
    events = []
    monitor = ProcessMonitor(engine, machine, on_event=lambda k, c, d: events.append((k, c.name)))
    monitor.start()
    container = machine.create_container("c1")
    container.start()
    engine.advance(3.0)
    container.fail()
    engine.advance(1.0)
    assert ("container-dead", "c1") in events
    # no duplicate reports
    engine.advance(2.0)
    assert events.count(("container-dead", "c1")) == 1


def test_process_monitor_reports_process_death(engine, machine):
    events = []
    monitor = ProcessMonitor(engine, machine, on_event=lambda k, c, d: events.append((k, d)))
    monitor.start()
    container = machine.create_container("c1")
    container.start()
    engine.advance(3.0)  # bounded: the monitor's periodic task never idles

    class FakeProc:
        alive = False

    container.add_process("bgp", FakeProc())
    engine.advance(1.0)
    assert ("process-dead", "bgp") in events


def test_monitor_clear_reported_allows_refire(engine, machine):
    events = []
    monitor = ProcessMonitor(engine, machine, on_event=lambda k, c, d: events.append(k))
    monitor.start()
    container = machine.create_container("c1")
    container.start()
    engine.advance(3.0)  # bounded: the monitor's periodic task never idles

    class FakeProc:
        alive = False

    container.add_process("bgp", FakeProc())
    engine.advance(1.0)
    monitor.clear_reported("c1")
    engine.advance(1.0)
    assert events.count("process-dead") == 2


# -- resources (Fig. 6d) ------------------------------------------------------


def test_memory_model_matches_paper_scale():
    model = ResourceModel()
    # 100 containers with ~1000 configs each ~= 25 GB
    total = 100 * model.container_memory(1000)
    assert 20 * 2**30 < total < 30 * 2**30


def test_cpu_model_matches_paper_scale():
    model = ResourceModel()
    assert 100 * model.container_cpu_fraction() == pytest.approx(0.056, rel=0.01)


def test_machine_resource_accounting(engine, machine):
    for i in range(10):
        container = machine.create_container(f"c{i}", config_entries=1000)
        container.start()
    engine.run_until_idle()
    assert machine.memory_used() == 10 * machine.resources.container_memory(1000)
    assert machine.cpu_used_fraction() == pytest.approx(
        10 * machine.resources.container_cpu_fraction()
    )


def test_host_capacity_bounds():
    model = ResourceModel()
    assert model.host_capacity_containers(1000) >= 1000  # CPU bound ~ 1785


# -- underlay -----------------------------------------------------------------


def test_underlay_claim_binds_address(engine, network, machine):
    underlay = Underlay(network)
    container = machine.create_container("c1")
    container.start()
    engine.run_until_idle()
    binding = underlay.claim("10.99.0.1", machine, container, "v1")
    assert network.host_by_address("10.99.0.1") is binding.endpoint
    assert binding.endpoint.anchor() is machine.host
    assert underlay.owner_machine("10.99.0.1") is machine


def test_underlay_move_rebinds_exclusively(engine, network, machine):
    other = HostMachine(engine, network, "gw-2", "10.2.0.1")
    underlay = Underlay(network)
    c1 = machine.create_container("c1")
    c2 = other.create_container("c2")
    c1.start(); c2.start()
    engine.run_until_idle()
    underlay.claim("10.99.0.1", machine, c1, "v1")
    moved = underlay.claim("10.99.0.1", other, c2, "v1")
    assert network.host_by_address("10.99.0.1") is moved.endpoint
    assert moved.endpoint.anchor() is other.host
    assert underlay.moves == 1
    assert underlay.addresses_on(machine) == []


def test_underlay_release(engine, network, machine):
    underlay = Underlay(network)
    container = machine.create_container("c1")
    container.start()
    engine.run_until_idle()
    underlay.claim("10.99.0.1", machine, container, "v1")
    underlay.release("10.99.0.1")
    assert network.host_by_address("10.99.0.1") is None
    assert len(underlay) == 0


def test_underlay_vxlan_veth_plumbing_names(engine, network, machine):
    underlay = Underlay(network)
    container = machine.create_container("c1")
    container.start()
    engine.run_until_idle()
    binding = underlay.claim("10.99.0.1", machine, container, "vrf-7")
    assert binding.veth.host_if == "veth-c1-vrf-7"
    assert binding.veth.container_if == "eth-vrf-7"
    assert binding.bridge.vxlan.machine is machine
