"""Differential Loc-RIB harness (DESIGN.md §14): trie vs reference.

Three implementations run in lockstep under seeded insert/retract
churn — the production :class:`LocRib` on its radix-trie store, the
same LocRib on the seed-era flat-dict store, and the brute-force
:class:`ReferenceRib` oracle — and must agree at every step on best
routes, and at every checkpoint on snapshot exports, digest
bit-identity, LPM answers, and covered/covering subtree walks.

The workload is adversarial for the trie: clustered prefixes (sibling
splits, shared stems), MED-group attribute mixes (exercises the
incremental-reselect fallbacks), covering chains (/8 over /16 over /24
over /32), the default route, and bursts of retract-to-empty that force
node pruning.
"""

import pytest

from repro.bgp import AsPath, LocRib, Origin, PathAttributes, Prefix
from repro.bgp.radix import DictPrefixStore
from repro.bgp.rib import Route
from repro.sim.rand import DeterministicRandom

from tests.rib_reference import ReferenceRib, probe_points, rib_digest_of

PEERS = [f"peer{i}" for i in range(6)]


def _attributes(rng):
    """Attribute mixes that reach every decision step, including MED
    (same neighboring AS, different MED) and iBGP ranking."""
    first_as = rng.choice([64500, 64501, 64502])
    path = (first_as,) + tuple(
        64600 + rng.randrange(4) for _ in range(rng.randrange(3)))
    return PathAttributes(
        origin=rng.choice([Origin.IGP, Origin.EGP, Origin.INCOMPLETE]),
        as_path=AsPath.sequence(*path),
        next_hop="1.1.1.1",
        local_pref=rng.choice([None, 90, 100, 100, 110]),
        med=rng.choice([None, 0, 10, 20]),
    )


def _prefix_pool(rng, size):
    """Clustered pool: covering chains and dense sibling blocks."""
    pool = [Prefix(0, 0)]  # default route: the root carries an entry
    for _ in range(size // 3):
        base = rng.choice([0x0A000000, 0x0B000000, 0xC0A80000])
        block = base | (rng.randrange(16) << 16)
        pool.append(Prefix(block, 16))
        for sub in range(rng.randrange(1, 5)):
            pool.append(Prefix(block | (sub << 8), 24))
        pool.append(Prefix(block | rng.randrange(256), 32))
    while len(pool) < size:
        pool.append(Prefix(rng.randrange(2**32), rng.choice([8, 20, 28])))
    return pool


def _assert_checkpoint(trie_rib, dict_rib, reference, pool, rng):
    exports = reference.export_entries()
    assert trie_rib.export_entries() == exports
    assert dict_rib.export_entries() == exports
    digest = reference.digest()
    assert rib_digest_of(trie_rib) == digest
    assert rib_digest_of(dict_rib) == digest
    assert set(trie_rib.prefixes()) == reference.prefixes()
    for point in probe_points(pool, rng):
        expected = reference.lookup(point)
        assert trie_rib.lookup(point) == expected
        assert dict_rib.lookup(point) == expected
        assert trie_rib.covered_best(point) == reference.covered_best(point)
        assert (trie_rib.covering_best(point)
                == reference.covering_best(point))


@pytest.mark.parametrize("seed", range(8))
def test_lockstep_churn(seed):
    rng = DeterministicRandom(seed).stream("rib-differential")
    pool = _prefix_pool(rng, 30)
    trie_rib = LocRib()
    dict_rib = LocRib(store=DictPrefixStore())
    reference = ReferenceRib()
    steps = 400
    for step in range(steps):
        prefix = rng.choice(pool)
        peer = rng.choice(PEERS)
        retract_bias = 0.65 if step > steps * 0.7 else 0.3
        if rng.random() < retract_bias:
            expected = reference.retract(prefix, peer)
            assert trie_rib.retract(prefix, peer) == expected
            assert dict_rib.retract(prefix, peer) == expected
        else:
            route = Route(prefix, _attributes(rng), peer,
                          rng.choice(["ebgp", "ebgp", "ibgp"]))
            expected = reference.offer(route)
            assert trie_rib.offer(route) == expected
            assert dict_rib.offer(route) == expected
        assert trie_rib.best(prefix) == reference.best(prefix)
        if step % 80 == 79:
            _assert_checkpoint(trie_rib, dict_rib, reference, pool, rng)
    # Drain to empty: maximum pruning pressure on the trie.
    for prefix in list(pool):
        for peer in PEERS:
            expected = reference.retract(prefix, peer)
            assert trie_rib.retract(prefix, peer) == expected
            assert dict_rib.retract(prefix, peer) == expected
    assert len(trie_rib) == len(reference) == 0
    assert trie_rib.export_entries() == []
    assert len(trie_rib.store) == 0


def test_incremental_matches_reference_decisions():
    """The incremental MED-group shortcuts must land on the same best
    route the full re-scan picks, across a dense same-prefix battle."""
    rng = DeterministicRandom(99).stream("rib-med-battle")
    prefix = Prefix.parse("10.0.0.0/8")
    trie_rib, reference = LocRib(), ReferenceRib()
    for _ in range(300):
        peer = rng.choice(PEERS)
        if rng.random() < 0.35:
            assert (trie_rib.retract(prefix, peer)
                    == reference.retract(prefix, peer))
        else:
            route = Route(prefix, _attributes(rng), peer)
            assert trie_rib.offer(route) == reference.offer(route)
        assert trie_rib.best(prefix) == reference.best(prefix)
        assert trie_rib.candidates(prefix) == reference.candidates(prefix)


def test_import_entries_round_trip_via_trie():
    rng = DeterministicRandom(3).stream("rib-import")
    rib = LocRib()
    for prefix in _prefix_pool(rng, 20):
        rib.offer(Route(prefix, _attributes(rng), rng.choice(PEERS)))
    clone = LocRib.import_entries(rib.export_entries())
    assert clone.export_entries() == rib.export_entries()
    assert rib_digest_of(clone) == rib_digest_of(rib)
