"""Seeded equivalence: sharded parallel execution is bit-identical.

The conservative runtime's core guarantee (DESIGN.md §11): for a fixed
scenario and seed, ``workers=1`` and ``workers=4`` produce identical
Loc-RIB contents, chaos oracle verdicts, and trace phase summaries —
sharding changes wall-clock, never results.  These tests pin that
guarantee on the two shard programs the repo ships: the container-fleet
workload (cross-shard BGP ring) and the chaos corpus (closed shards).
"""

import functools
import math

import pytest

from repro.failures.chaos import (
    chaos_corpus_horizon,
    chaos_corpus_specs,
    generate_schedule,
    run_schedule,
)
from repro.sim import Engine, Network
from repro.sim.network import Packet
from repro.sim.parallel import BoundaryLink, ParallelRunner, ShardSpec
from repro.workloads.fleet import fleet_site_specs

pytestmark = pytest.mark.slow

FLEET_KW = dict(pairs=2, routes=20, border_routes=10, seed=3,
                churn_ticks=2, churn_interval=2.0, tracing=True)
FLEET_DURATION = 22.0
CHAOS_SEEDS = (0, 1, 2)


@functools.lru_cache(maxsize=None)
def fleet_run(workers, transport="shm"):
    specs = fleet_site_specs(2, **FLEET_KW)
    return ParallelRunner(specs, workers=workers,
                          transport=transport).run(FLEET_DURATION)


@functools.lru_cache(maxsize=None)
def chaos_run(workers):
    specs = chaos_corpus_specs(CHAOS_SEEDS)
    return ParallelRunner(specs, workers=workers).run(
        chaos_corpus_horizon(CHAOS_SEEDS)
    )


DB_FAILOVER_SEEDS = (10, 11, 12)


@functools.lru_cache(maxsize=None)
def db_failover_run(workers):
    specs = chaos_corpus_specs(DB_FAILOVER_SEEDS, db_failover=True)
    return ParallelRunner(specs, workers=workers).run(
        chaos_corpus_horizon(DB_FAILOVER_SEEDS, db_failover=True)
    )


# ----------------------------------------------------------------------
# fleet workload: traced, cross-shard BGP ring
# ----------------------------------------------------------------------

def test_fleet_sharded_run_is_bit_identical_across_worker_counts():
    sequential, two, four = fleet_run(1), fleet_run(2), fleet_run(4)
    assert sequential.shard_results == two.shard_results
    assert sequential.shard_results == four.shard_results
    # same virtual execution: identical event counts, barrier count, and
    # the exact adaptive window sequence (the horizon is a pure function
    # of shard state, never of worker placement)
    for sharded in (two, four):
        assert sequential.executed == sharded.executed
        assert sequential.windows == sharded.windows
        assert sequential.window_edges == sharded.window_edges


def test_fleet_run_exercises_the_cross_shard_ring():
    result = fleet_run(1)
    for site_result in result.shard_results.values():
        # WAN sessions established over boundary links and routes learned
        assert site_result["border_established"] >= 1
        assert len(site_result["border_rib"]) > FLEET_KW["border_routes"]
        # per-pair Loc-RIBs converged and non-trivial
        assert site_result["rib"]
        assert all(site_result["rib"].values())


def test_fleet_sharded_run_is_bit_identical_across_transports():
    # the compact shared-memory codec and the pickle-over-pipe reference
    # must carry byte-for-byte the same simulation: full shard results
    # (traced phase summaries included) and the window sequence agree
    shm, pipe = fleet_run(4), fleet_run(4, "pipe")
    assert shm.shard_results == pipe.shard_results
    assert shm.window_edges == pipe.window_edges
    assert shm.shard_results == fleet_run(1).shard_results
    assert pipe.transport["kind"] == "pipe"


def test_fleet_trace_phase_summaries_match_across_worker_counts():
    sequential, sharded = fleet_run(1), fleet_run(4)
    for site in sequential.shard_results:
        summary = sequential.shard_results[site]["phase_summary"]
        assert summary  # tracing was on and captured phases
        assert summary == sharded.shard_results[site]["phase_summary"]


# ----------------------------------------------------------------------
# chaos corpus: closed shards, oracle verdicts
# ----------------------------------------------------------------------

def test_chaos_corpus_verdicts_identical_across_worker_counts():
    sequential, two, four = chaos_run(1), chaos_run(2), chaos_run(4)
    assert sequential.shard_results == two.shard_results
    assert sequential.shard_results == four.shard_results
    for seed in CHAOS_SEEDS:
        verdict = sequential.shard_results[f"chaos{seed}"]["verdict"]
        assert verdict == "all oracles passed"


def test_db_failover_chaos_identical_across_worker_counts():
    """The automatic-failover machinery (monitor pings, promotion,
    client repoints, retry backoff) is all virtual-time events; sharding
    must not perturb any of it — verdicts and RIBs stay bit-identical
    and every seed fails over exactly once, cleanly."""
    sequential, sharded = db_failover_run(1), db_failover_run(4)
    assert sequential.shard_results == sharded.shard_results
    for seed in DB_FAILOVER_SEEDS:
        verdict = sequential.shard_results[f"chaos{seed}"]["verdict"]
        assert verdict == "all oracles passed"


# ----------------------------------------------------------------------
# quiet/bursty scenario: adaptive windows widen in gaps, narrow in bursts
# ----------------------------------------------------------------------

BURST_DURATION = 16.0
BURST_LOOKAHEAD = 0.01


class BurstProgram:
    """Alternating quiet/bursty shard for the adaptive-window contract.

    Cross-shard traffic happens in short scoped bursts separated by long
    quiet gaps, while dense *unscoped* local tick noise runs throughout —
    exactly the shape the scoped ``next_outbound_time()`` bound exists
    for: the noise must not narrow the windows, the bursts must.
    """

    SCOPE = "burst"

    def __init__(self, shard_id, params, boundary):
        self.engine = Engine()
        self.network = Network(self.engine)
        self.host = self.network.add_host(f"h-{shard_id}", params["addr"])
        self.peer = params["peer"]
        self.log = []
        self.ticks = 0
        self.host.bind("udp", 9, self._on_packet)
        boundary.inject_scope = self.SCOPE
        boundary.attach(self.network)
        # dense local noise, outside the scope (5 ms cadence, half the
        # lookahead): invisible to next_outbound_time() by design
        self.engine.schedule(0.005, self._tick)
        with self.engine.scoped(self.SCOPE):
            for start in params.get("bursts", ()):
                self.engine.schedule(start, self._burst, 0)

    def _tick(self):
        self.ticks += 1
        if self.engine.now < BURST_DURATION - 0.01:
            self.engine.schedule(0.005, self._tick)

    def _burst(self, n):
        self.log.append(("tx", round(self.engine.now, 6), n))
        self.host.send(
            Packet(self.host.address, self.peer, "udp", 9, 9, n, 100)
        )
        if n + 1 < 5:
            # fires under the burst scope (ambient propagation), so the
            # rest of the burst stays visible to the lookahead bound
            self.engine.schedule(0.003, self._burst, n + 1)

    def _on_packet(self, packet):
        self.log.append(("rx", round(self.engine.now, 6), packet.payload))

    def next_outbound_time(self):
        return self.engine.next_event_time(self.SCOPE)

    def results(self):
        return {"log": tuple(self.log), "ticks": self.ticks}


def build_burst(shard_id, params, boundary):
    return BurstProgram(shard_id, params, boundary)


def burst_specs():
    return [
        ShardSpec(
            "A", build_burst,
            {"addr": "10.0.0.1", "peer": "10.0.0.2", "bursts": (2.0, 12.0)},
            links=[BoundaryLink("10.0.0.1", "10.0.0.2", "B", BURST_LOOKAHEAD)],
        ),
        ShardSpec(
            "B", build_burst,
            {"addr": "10.0.0.2", "peer": "10.0.0.1", "bursts": (7.0,)},
            links=[BoundaryLink("10.0.0.2", "10.0.0.1", "A", BURST_LOOKAHEAD)],
        ),
    ]


@functools.lru_cache(maxsize=None)
def burst_run(workers):
    return ParallelRunner(burst_specs(), workers=workers).run(BURST_DURATION)


def test_burst_scenario_bit_identical_across_worker_counts():
    one, two, four = burst_run(1), burst_run(2), burst_run(4)
    assert one.shard_results == two.shard_results
    assert one.shard_results == four.shard_results
    assert one.window_edges == two.window_edges
    assert one.window_edges == four.window_edges
    # every burst actually crossed shards in both directions
    for shard in ("A", "B"):
        log = one.shard_results[shard]["log"]
        assert any(entry[0] == "rx" for entry in log)
        assert one.shard_results[shard]["ticks"] > 1000  # noise really ran


def test_burst_scenario_windows_collapse_in_quiet_gaps():
    result = burst_run(1)
    fixed_equiv = math.ceil(BURST_DURATION / BURST_LOOKAHEAD)
    # far below the fixed-lookahead window count despite the dense noise
    assert result.windows * 10 <= fixed_equiv
    # the quiet gaps are covered by a handful of wide windows...
    _wide_count, wide_span = result.wide_windows()
    assert wide_span > BURST_DURATION * 0.6
    # ...while the bursts force windows back down to the lookahead bound
    assert any(
        width <= BURST_LOOKAHEAD * 1.5 for width in result.window_widths()
    )


# ----------------------------------------------------------------------
# fuzz specs as closed shards: coverage keys are worker-count stable
# ----------------------------------------------------------------------

FUZZ_SEEDS = (1, 4)


@functools.lru_cache(maxsize=None)
def fuzz_run(workers):
    from repro.fuzz import fuzz_corpus_specs, generate_fuzz_spec

    specs = [generate_fuzz_spec(seed) for seed in FUZZ_SEEDS]
    horizon = max(spec.duration for spec in specs) + 20.0
    return ParallelRunner(
        fuzz_corpus_specs(specs, tracing=True), workers=workers
    ).run(horizon)


def test_fuzz_coverage_keys_identical_across_worker_counts():
    """DESIGN.md §13 (S4): the coverage signal is a pure function of
    deterministic run state, so the same spec + seed yields the same
    profile and coverage key under workers=1 and workers=4 — full shard
    results (RIBs, verdicts, phase shapes) included."""
    sequential, sharded = fuzz_run(1), fuzz_run(4)
    assert sequential.shard_results == sharded.shard_results
    for seed in FUZZ_SEEDS:
        shard = sequential.shard_results[f"fuzz{seed}"]
        assert shard["verdict"] == "all oracles passed"
        assert shard["completed"] is True
        assert shard["coverage_key"] == (
            sharded.shard_results[f"fuzz{seed}"]["coverage_key"]
        )


def test_fuzz_shard_matches_plain_run_fuzz_spec():
    from repro.fuzz import (
        coverage_key,
        generate_fuzz_spec,
        run_fuzz_spec,
        run_profile,
    )

    sharded = fuzz_run(1)
    for seed in FUZZ_SEEDS:
        plain = run_fuzz_spec(generate_fuzz_spec(seed), tracing=True)
        shard = sharded.shard_results[f"fuzz{seed}"]
        assert shard["verdict"] == plain.summary()
        assert shard["executed"] == plain.events_executed
        assert shard["rib"] == plain.system.rib_digest()
        assert shard["profile"] == run_profile(plain)
        assert shard["coverage_key"] == coverage_key(run_profile(plain))


def test_chaos_shard_matches_plain_run_schedule():
    # a closed shard under the windowed runner is literally run_schedule:
    # same verdict, same violation list, same event count, same RIBs
    sharded = chaos_run(1)
    for seed in CHAOS_SEEDS:
        plain = run_schedule(generate_schedule(seed))
        shard = sharded.shard_results[f"chaos{seed}"]
        assert shard["verdict"] == plain.summary()
        assert shard["violations"] == tuple(
            (v.time, v.oracle, v.detail) for v in plain.suite.violations
        )
        assert shard["executed"] == plain.events_executed
        assert shard["rib"] == plain.system.rib_digest()


# ----------------------------------------------------------------------
# prefix-store differential: trie vs dict backend (DESIGN.md §14)
# ----------------------------------------------------------------------
#
# The radix-trie Loc-RIB store must be observationally invisible: the
# same chaos schedules and fuzz specs, re-run with the brute-force
# DictPrefixStore backend, must produce bit-identical rib_digest
# snapshots, oracle verdicts, and event counts.  These pins catch any
# trie bug that changes selection order, export order, or timing.

def test_chaos_corpus_identical_under_dict_prefix_store():
    from repro.bgp.rib import DictPrefixStore, use_prefix_store

    trie = chaos_run(1)
    for seed in CHAOS_SEEDS:
        with use_prefix_store(DictPrefixStore):
            reference = run_schedule(generate_schedule(seed))
        shard = trie.shard_results[f"chaos{seed}"]
        assert shard["verdict"] == reference.summary()
        assert shard["executed"] == reference.events_executed
        assert shard["rib"] == reference.system.rib_digest()


def test_db_failover_chaos_identical_under_dict_prefix_store():
    from repro.bgp.rib import DictPrefixStore, use_prefix_store

    trie = db_failover_run(1)
    for seed in DB_FAILOVER_SEEDS:
        with use_prefix_store(DictPrefixStore):
            reference = run_schedule(
                generate_schedule(seed, db_failover=True))
        shard = trie.shard_results[f"chaos{seed}"]
        assert shard["verdict"] == reference.summary()
        assert shard["executed"] == reference.events_executed
        assert shard["rib"] == reference.system.rib_digest()


def test_fuzz_runs_identical_under_dict_prefix_store():
    from repro.bgp.rib import DictPrefixStore, use_prefix_store
    from repro.fuzz import (
        coverage_key,
        generate_fuzz_spec,
        run_fuzz_spec,
        run_profile,
    )

    trie = fuzz_run(1)
    for seed in FUZZ_SEEDS:
        with use_prefix_store(DictPrefixStore):
            reference = run_fuzz_spec(generate_fuzz_spec(seed), tracing=True)
        shard = trie.shard_results[f"fuzz{seed}"]
        assert shard["verdict"] == reference.summary()
        assert shard["rib"] == reference.system.rib_digest()
        assert shard["coverage_key"] == coverage_key(run_profile(reference))
