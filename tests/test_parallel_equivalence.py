"""Seeded equivalence: sharded parallel execution is bit-identical.

The conservative runtime's core guarantee (DESIGN.md §11): for a fixed
scenario and seed, ``workers=1`` and ``workers=4`` produce identical
Loc-RIB contents, chaos oracle verdicts, and trace phase summaries —
sharding changes wall-clock, never results.  These tests pin that
guarantee on the two shard programs the repo ships: the container-fleet
workload (cross-shard BGP ring) and the chaos corpus (closed shards).
"""

import functools

import pytest

from repro.failures.chaos import (
    chaos_corpus_horizon,
    chaos_corpus_specs,
    generate_schedule,
    run_schedule,
)
from repro.sim.parallel import ParallelRunner
from repro.workloads.fleet import fleet_site_specs

pytestmark = pytest.mark.slow

FLEET_KW = dict(pairs=2, routes=20, border_routes=10, seed=3,
                churn_ticks=2, churn_interval=2.0, tracing=True)
FLEET_DURATION = 22.0
CHAOS_SEEDS = (0, 1, 2)


@functools.lru_cache(maxsize=None)
def fleet_run(workers):
    specs = fleet_site_specs(2, **FLEET_KW)
    return ParallelRunner(specs, workers=workers).run(FLEET_DURATION)


@functools.lru_cache(maxsize=None)
def chaos_run(workers):
    specs = chaos_corpus_specs(CHAOS_SEEDS)
    return ParallelRunner(specs, workers=workers).run(
        chaos_corpus_horizon(CHAOS_SEEDS)
    )


DB_FAILOVER_SEEDS = (10, 11)


@functools.lru_cache(maxsize=None)
def db_failover_run(workers):
    specs = chaos_corpus_specs(DB_FAILOVER_SEEDS, db_failover=True)
    return ParallelRunner(specs, workers=workers).run(
        chaos_corpus_horizon(DB_FAILOVER_SEEDS, db_failover=True)
    )


# ----------------------------------------------------------------------
# fleet workload: traced, cross-shard BGP ring
# ----------------------------------------------------------------------

def test_fleet_sharded_run_is_bit_identical_across_worker_counts():
    sequential, sharded = fleet_run(1), fleet_run(4)
    assert sequential.shard_results == sharded.shard_results
    # same virtual execution: identical event counts and barrier count
    assert sequential.executed == sharded.executed
    assert sequential.windows == sharded.windows


def test_fleet_run_exercises_the_cross_shard_ring():
    result = fleet_run(1)
    for site_result in result.shard_results.values():
        # WAN sessions established over boundary links and routes learned
        assert site_result["border_established"] >= 1
        assert len(site_result["border_rib"]) > FLEET_KW["border_routes"]
        # per-pair Loc-RIBs converged and non-trivial
        assert site_result["rib"]
        assert all(site_result["rib"].values())


def test_fleet_trace_phase_summaries_match_across_worker_counts():
    sequential, sharded = fleet_run(1), fleet_run(4)
    for site in sequential.shard_results:
        summary = sequential.shard_results[site]["phase_summary"]
        assert summary  # tracing was on and captured phases
        assert summary == sharded.shard_results[site]["phase_summary"]


# ----------------------------------------------------------------------
# chaos corpus: closed shards, oracle verdicts
# ----------------------------------------------------------------------

def test_chaos_corpus_verdicts_identical_across_worker_counts():
    sequential, sharded = chaos_run(1), chaos_run(4)
    assert sequential.shard_results == sharded.shard_results
    for seed in CHAOS_SEEDS:
        verdict = sequential.shard_results[f"chaos{seed}"]["verdict"]
        assert verdict == "all oracles passed"


def test_db_failover_chaos_identical_across_worker_counts():
    """The automatic-failover machinery (monitor pings, promotion,
    client repoints, retry backoff) is all virtual-time events; sharding
    must not perturb any of it — verdicts and RIBs stay bit-identical
    and every seed fails over exactly once, cleanly."""
    sequential, sharded = db_failover_run(1), db_failover_run(4)
    assert sequential.shard_results == sharded.shard_results
    for seed in DB_FAILOVER_SEEDS:
        verdict = sequential.shard_results[f"chaos{seed}"]["verdict"]
        assert verdict == "all oracles passed"


def test_chaos_shard_matches_plain_run_schedule():
    # a closed shard under the windowed runner is literally run_schedule:
    # same verdict, same violation list, same event count, same RIBs
    sharded = chaos_run(1)
    for seed in CHAOS_SEEDS:
        plain = run_schedule(generate_schedule(seed))
        shard = sharded.shard_results[f"chaos{seed}"]
        assert shard["verdict"] == plain.summary()
        assert shard["violations"] == tuple(
            (v.time, v.oracle, v.detail) for v in plain.suite.violations
        )
        assert shard["executed"] == plain.events_executed
        assert shard["rib"] == plain.system.rib_digest()
