"""Backup recovery: state parsing, Loc-RIB rebuild, TCP repair math."""

import pytest

from repro.bgp import LocRib, PathAttributes, Prefix
from repro.bgp.attributes import AsPath
from repro.bgp.rib import Route
from repro.core.recovery import BackupRecovery, RecoveredState
from repro.core.replication import (
    ConnectionKeys,
    ReplicationPipeline,
    rib_delta_key,
    rib_snapshot_key,
)
from repro.kvstore import KvClient, KvServer
from repro.sim import DeterministicRandom, Engine, Network


def _attrs(lp=None):
    return PathAttributes(as_path=AsPath.sequence(64512), next_hop="1.1.1.1",
                          local_pref=lp)


def _state_with(pair="pair0"):
    return RecoveredState(pair)


def test_rebuild_loc_rib_from_deltas():
    state = _state_with()
    state.rib_deltas["v1"] = [
        (0, {"announce": [("10.0.0.0/8", _attrs().to_wire(), "p1", "ebgp")],
             "withdraw": [], "in_pos": 100}),
        (1, {"announce": [("10.0.0.0/8", _attrs(200).to_wire(), "p2", "ebgp")],
             "withdraw": [], "in_pos": 200}),
        (2, {"announce": [], "withdraw": [("10.0.0.0/8", "p1")], "in_pos": 300}),
    ]
    rib = state.rebuild_loc_rib("v1")
    best = rib.best(Prefix.parse("10.0.0.0/8"))
    assert best.peer_id == "p2"
    assert len(rib.candidates(Prefix.parse("10.0.0.0/8"))) == 1


def test_rebuild_loc_rib_snapshot_plus_deltas():
    state = _state_with()
    rib = LocRib()
    for i in range(10):
        rib.offer(Route(Prefix(i << 8, 24), _attrs(), "p1"))
    entries = rib.export_entries()
    state.rib_snapshots["v1"] = {0: entries[:5], 1: entries[5:]}
    state.rib_markers["v1"] = {"chunks": 2, "delta_floor": 7}
    # deltas below the floor are superseded and must be skipped
    state.rib_deltas["v1"] = [
        (5, {"announce": [("99.0.0.0/8", _attrs().to_wire(), "px", "ebgp")],
             "withdraw": [], "in_pos": 1}),
        (7, {"announce": [("42.0.0.0/8", _attrs().to_wire(), "p1", "ebgp")],
             "withdraw": [], "in_pos": 2}),
    ]
    rebuilt = state.rebuild_loc_rib("v1")
    assert len(rebuilt) == 11  # 10 snapshot + 1 live delta
    assert rebuilt.best(Prefix.parse("99.0.0.0/8")) is None


def test_recovered_in_position_prefers_max():
    state = _state_with()
    state.tcp_status["c1"] = {"in_pos": 500, "out_pruned": 0}
    state.in_messages["c1"] = [(600, {"in_pos": 600}), (700, {"in_pos": 700})]
    assert state.recovered_in_position("c1") == 700
    assert state.recovered_in_position("unknown") == 0


def test_unapplied_messages_filtered_by_watermark():
    state = _state_with()
    state.tcp_status["c1"] = {"in_pos": 600, "out_pruned": 0}
    state.in_messages["c1"] = [(600, {"in_pos": 600, "m": "applied"}),
                               (700, {"in_pos": 700, "m": "pending"})]
    pending = state.unapplied_messages("c1")
    assert [r["m"] for r in pending] == ["pending"]


def test_recovered_out_state():
    state = _state_with()
    state.tcp_status["c1"] = {"in_pos": 0, "out_pruned": 60}
    # contiguous surviving suffix: [80,100) + [100,150) + [150,200)
    state.out_messages["c1"] = [(100, {"wire": b"a" * 20}), (150, {"wire": b"b" * 50}),
                                (200, {"wire": b"c" * 50})]
    out_pos, unpruned, base = state.recovered_out_state("c1")
    assert out_pos == 200
    assert unpruned == [100, 150, 200]
    assert base == 80  # start of the earliest surviving record


def test_recovered_out_state_empty_falls_back_to_watermark():
    state = _state_with()
    state.tcp_status["c1"] = {"in_pos": 0, "out_pruned": 42}
    assert state.recovered_out_state("c1") == (42, [], 42)


def test_tcp_repair_state_math():
    state = _state_with()
    state.sessions["c1"] = {
        "iss": 1000, "irs": 5000,
        "local_addr": "10.0.0.1", "local_port": 179,
        "remote_addr": "192.0.2.1", "remote_port": 40000,
        "remote_as": 64512, "vrf": "v1", "hold_time": 90,
        "keepalive_interval": 30, "mode": "passive", "established_at": 0.0,
    }
    state.tcp_status["c1"] = {"in_pos": 300, "out_pruned": 0}
    state.out_messages["c1"] = [(50, {"wire": b"x" * 50}), (80, {"wire": b"y" * 30})]
    state.in_messages["c1"] = [(350, {"in_pos": 350})]
    repair = state.tcp_repair_state("c1")
    assert repair.snd_una == 1000 + 1 + 0  # earliest surviving record starts at 0
    assert repair.rcv_nxt == 5000 + 1 + 350  # stored message counts
    assert repair.send_queue == b"x" * 50 + b"y" * 30


def test_backup_recovery_load_parses_keyspace(engine):
    network = Network(engine, DeterministicRandom(3))
    network.enable_fabric(latency=5e-5)
    client_host = network.add_host("c", "1.1.1.1")
    db_host = network.add_host("db", "1.1.1.2")
    db = KvServer(engine, db_host)
    keys = ConnectionKeys("pair0", "v1", "10.0.0.1", 179, "192.0.2.1", 40000)
    db.store.set(keys.session, {"iss": 1, "irs": 2, "vrf": "v1",
                                "local_addr": "10.0.0.1", "local_port": 179,
                                "remote_addr": "192.0.2.1", "remote_port": 40000,
                                "remote_as": 64512, "hold_time": 90,
                                "keepalive_interval": 30, "mode": "passive",
                                "established_at": 0.0})
    db.store.set(keys.tcp_status, {"in_pos": 10, "out_pruned": 0})
    db.store.set(keys.message("i", 30), {"in_pos": 30})
    db.store.set(keys.message("o", 19), {"wire": b"k" * 19})
    db.store.set(rib_delta_key("pair0", "v1", 0),
                 {"announce": [], "withdraw": [], "in_pos": 10})
    db.store.set(rib_snapshot_key("pair0", "v1", 0), [])
    db.store.set("tensor:pair0:rib:v1:marker", {"chunks": 1, "delta_floor": 0})
    db.store.set("tensor:OTHER:sess:x", {"not": "ours"})
    client = KvClient(engine, client_host, "1.1.1.2")
    recovery = BackupRecovery(engine, client, "pair0")
    out = []
    recovery.load(out.append)
    engine.run_until_idle()
    state = out[0]
    assert list(state.sessions) == [keys.conn_id]
    assert state.tcp_status[keys.conn_id]["in_pos"] == 10
    assert state.in_messages[keys.conn_id] == [(30, {"in_pos": 30})]
    assert state.out_messages[keys.conn_id][0][0] == 19
    assert state.rib_markers["v1"]["chunks"] == 1
    assert state.vrf_names() == ["v1"]
    assert state.records_read == 7  # the OTHER pair's record excluded
