"""The tcp_queue thread: ACK holding, matching, release, crash semantics."""

import pytest

from repro.core.ack_matching import TENSOR_ACK_QUEUE, TcpQueueThread
from repro.core.replication import ConnectionKeys, ReplicationPipeline
from repro.kvstore import KvClient, KvServer
from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack

from conftest import make_tcp_pair


@pytest.fixture
def env(engine):
    network = Network(engine, DeterministicRandom(6))
    network.enable_fabric(latency=5e-5)
    a = network.add_host("a", "10.0.0.1")  # remote peer
    b = network.add_host("b", "10.0.0.2")  # gateway
    network.connect(a, b, latency=100e-6, bandwidth=100e9)
    db_host = network.add_host("db", "10.0.0.3")
    server = KvServer(engine, db_host)
    fast = KvClient(engine, b, "10.0.0.3")
    bulk = KvClient(engine, b, "10.0.0.3")
    pipeline = ReplicationPipeline("pair0", fast, bulk)
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    return engine, network, server, pipeline, sa, sb


def _establish(engine, sa, sb):
    client, accepted, received = make_tcp_pair(engine, sa, sb, port=179)
    return client, accepted[0], received


def test_acks_held_until_replication_confirmed(env):
    engine, _net, server, pipeline, sa, sb = env
    tq = TcpQueueThread(engine, pipeline)
    client, gw_conn, _rx = _establish(engine, sa, sb)
    keys = ConnectionKeys("pair0", "v1", "10.0.0.2", 179, "10.0.0.1", client.local_port)
    tq.install_for_connection(sb, gw_conn, keys)
    client.send(b"M" * 500)
    engine.advance(0.5)
    assert client.snd_una < client.snd_nxt  # ACK held: sender not advanced
    assert tq.held_count() == 1
    # now the "main thread" replicates and notifies
    position = gw_conn.rcv_nxt
    record_key = keys.message("i", 500)
    pipeline.fast.set(record_key, {"ack": position})
    engine.advance(0.1)  # bounded: run_until_idle would run past the
    tq.note_replicated(keys, position, record_key)  # TCP user timeout
    engine.advance(0.1)
    assert client.snd_una == client.snd_nxt  # ACK released and arrived
    assert tq.held_count() == 0
    assert tq.acks_released >= 1


def test_verify_read_failure_keeps_holding(env):
    engine, _net, server, pipeline, sa, sb = env
    tq = TcpQueueThread(engine, pipeline)
    client, gw_conn, _rx = _establish(engine, sa, sb)
    keys = ConnectionKeys("pair0", "v1", "10.0.0.2", 179, "10.0.0.1", client.local_port)
    tq.install_for_connection(sb, gw_conn, keys)
    client.send(b"M" * 100)
    engine.advance(0.3)
    # notify about a record that is NOT in the database
    tq.note_replicated(keys, gw_conn.rcv_nxt, keys.message("i", 100))
    engine.advance(0.5)
    assert tq.held_count() == 1  # fail-safe: still held


def test_verify_reads_can_be_disabled(env):
    engine, _net, server, pipeline, sa, sb = env
    tq = TcpQueueThread(engine, pipeline, verify_reads=False)
    client, gw_conn, _rx = _establish(engine, sa, sb)
    keys = ConnectionKeys("pair0", "v1", "10.0.0.2", 179, "10.0.0.1", client.local_port)
    tq.install_for_connection(sb, gw_conn, keys)
    client.send(b"M" * 100)
    engine.advance(0.3)
    tq.note_replicated(keys, gw_conn.rcv_nxt, keys.message("i", 100))
    engine.run_until_idle()
    assert tq.held_count() == 0
    assert tq.verify_read_count == 0


def test_redundant_older_acks_dropped(env):
    engine, _net, server, pipeline, sa, sb = env
    tq = TcpQueueThread(engine, pipeline, verify_reads=False)
    client, gw_conn, _rx = _establish(engine, sa, sb)
    keys = ConnectionKeys("pair0", "v1", "10.0.0.2", 179, "10.0.0.1", client.local_port)
    tq.install_for_connection(sb, gw_conn, keys)
    client.mss_limit = 100
    client.send(b"M" * 300)  # three segments -> three held ACKs
    engine.advance(0.5)
    assert tq.held_count() >= 2
    tq.note_replicated(keys, gw_conn.rcv_nxt, keys.session)
    engine.run_until_idle()
    assert tq.held_count() == 0
    assert tq.acks_dropped_redundant >= 1  # only the newest hit the wire
    assert client.snd_una == client.snd_nxt


def test_unmanaged_connection_acks_pass_through(env):
    engine, _net, server, pipeline, sa, sb = env
    tq = TcpQueueThread(engine, pipeline)
    tq.attach_stack(sb)
    # a connection with no install_for_connection: its queued packets (if
    # any rule matched) are accepted immediately
    from repro.netfilter import Rule, Verdict

    sb.output_chain.append(Rule(lambda p: True, Verdict.QUEUE,
                                queue_num=TENSOR_ACK_QUEUE))
    client, gw_conn, received = _establish(engine, sa, sb)
    client.send(b"hello")
    engine.advance(0.5)
    assert bytes(received) == b"hello"
    assert client.snd_una == client.snd_nxt


def test_guard_rule_drops_rst_fin(env):
    engine, _net, server, pipeline, sa, sb = env
    tq = TcpQueueThread(engine, pipeline, verify_reads=False)
    client, gw_conn, _rx = _establish(engine, sa, sb)
    keys = ConnectionKeys("pair0", "v1", "10.0.0.2", 179, "10.0.0.1", client.local_port)
    tq.install_for_connection(sb, gw_conn, keys)
    resets = []
    client.on_reset = lambda _c, r: resets.append(r)
    closes = []
    client.on_close = lambda _c: closes.append(1)
    gw_conn.abort()  # tries to send RST -> guard drops it
    engine.advance(1.0)
    assert resets == [] and closes == []


def test_crash_drops_held_acks_forever(env):
    engine, _net, server, pipeline, sa, sb = env
    tq = TcpQueueThread(engine, pipeline, verify_reads=False)
    client, gw_conn, _rx = _establish(engine, sa, sb)
    keys = ConnectionKeys("pair0", "v1", "10.0.0.2", 179, "10.0.0.1", client.local_port)
    tq.install_for_connection(sb, gw_conn, keys)
    client.send(b"M" * 100)
    engine.advance(0.3)
    assert tq.held_count() == 1
    tq.crash()
    tq.note_replicated(keys, gw_conn.rcv_nxt, keys.session)
    engine.advance(3.0)
    # the remote never got the ACK: its send buffer still holds the data
    assert client.snd_una < client.snd_nxt
    assert client.retransmissions > 0


def test_uninstall_removes_rules_and_drops_held(env):
    engine, _net, server, pipeline, sa, sb = env
    tq = TcpQueueThread(engine, pipeline, verify_reads=False)
    client, gw_conn, _rx = _establish(engine, sa, sb)
    keys = ConnectionKeys("pair0", "v1", "10.0.0.2", 179, "10.0.0.1", client.local_port)
    tq.install_for_connection(sb, gw_conn, keys)
    rules_before = len(sb.output_chain.rules)
    client.send(b"M")
    engine.advance(0.3)
    tq.uninstall_connection(gw_conn)
    assert len(sb.output_chain.rules) == rules_before - 2
    assert tq.held_count() == 0
