"""BFD sessions, detection timing, and the agent relay."""

import pytest

from repro.bfd import BfdProcess, BfdRelay, BfdState
from repro.sim import DeterministicRandom, Engine, Network


@pytest.fixture
def bfd_pair(engine):
    network = Network(engine, DeterministicRandom(17))
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=100e-6, bandwidth=100e9)
    rng = DeterministicRandom(17)
    pa = BfdProcess(engine, a, rng=rng.stream("a"))
    pb = BfdProcess(engine, b, rng=rng.stream("b"))
    return network, pa, pb


def test_sessions_come_up(engine, bfd_pair):
    _net, pa, pb = bfd_pair
    sa = pa.add_session("v1", "10.0.0.2")
    sb = pb.add_session("v1", "10.0.0.1")
    pa.start(); pb.start()
    engine.advance(1.0)
    assert sa.state is BfdState.UP and sb.state is BfdState.UP
    assert sa.your_disc == sb.my_disc


def test_detection_within_mult_times_interval(engine, bfd_pair):
    _net, pa, pb = bfd_pair
    pa.add_session("v1", "10.0.0.2")
    sb = pb.add_session("v1", "10.0.0.1")
    pa.start(); pb.start()
    engine.advance(1.0)
    t0 = engine.now
    pa.crash()
    engine.advance(2.0)
    assert sb.state is BfdState.DOWN
    assert sb.last_down_at - t0 <= 3 * 0.1 + 0.15  # detect mult x interval (+jitter)


def test_state_change_callback_fires(engine, bfd_pair):
    _net, pa, pb = bfd_pair
    events = []
    pa.add_session("v1", "10.0.0.2")
    pb.add_session("v1", "10.0.0.1",
                   on_state_change=lambda s, old, new: events.append((old, new)))
    pa.start(); pb.start()
    engine.advance(1.0)
    assert (BfdState.INIT, BfdState.UP) in events or (BfdState.DOWN, BfdState.UP) in events


def test_session_recovers_after_restart(engine, bfd_pair):
    _net, pa, pb = bfd_pair
    sa = pa.add_session("v1", "10.0.0.2")
    sb = pb.add_session("v1", "10.0.0.1")
    pa.start(); pb.start()
    engine.advance(1.0)
    pa.crash()
    engine.advance(2.0)
    assert sb.state is BfdState.DOWN
    # restart a fresh process on the same host
    pa2 = BfdProcess(engine, _net.host_by_address("10.0.0.1"), port=3785)
    # note: original port still bound by crashed process's socket; use the
    # process-level restart path instead: revive the original
    pa.alive = True
    for session in pa.sessions.values():
        session.state = BfdState.DOWN
        session.running = True
        session._schedule_tx(immediate=True)
    engine.advance(2.0)
    assert sb.state is BfdState.UP


def test_vrf_sessions_independent(engine, bfd_pair):
    _net, pa, pb = bfd_pair
    sa1 = pa.add_session("v1", "10.0.0.2")
    sa2 = pa.add_session("v2", "10.0.0.2")
    sb1 = pb.add_session("v1", "10.0.0.1")
    sb2 = pb.add_session("v2", "10.0.0.1")
    pa.start(); pb.start()
    engine.advance(1.0)
    assert all(s.state is BfdState.UP for s in (sa1, sa2, sb1, sb2))
    # stop only v1 on a
    sa1.crash()
    engine.advance(2.0)
    assert sb1.state is BfdState.DOWN
    assert sb2.state is BfdState.UP


def test_export_relay_specs(engine, bfd_pair):
    _net, pa, pb = bfd_pair
    pa.add_session("v1", "10.0.0.2")
    pa.start()
    specs = pa.export_relay_specs()
    assert len(specs) == 1
    assert specs[0]["vrf"] == "v1"
    assert specs[0]["source_addr"] == "10.0.0.1"


def test_relay_masks_primary_death(engine, bfd_pair):
    network, pa, pb = bfd_pair
    agent = network.add_host("agent", "10.0.0.9")
    network.connect(agent, network.host_by_address("10.0.0.2"),
                    latency=100e-6, bandwidth=100e9)
    pa.add_session("v1", "10.0.0.2")
    sb = pb.add_session("v1", "10.0.0.1")
    pa.start(); pb.start()
    engine.advance(1.0)
    relay = BfdRelay(engine, agent, pa.export_relay_specs(),
                     rng=DeterministicRandom(5).stream("r"))
    relay.start()
    engine.advance(0.5)
    pa.crash()
    engine.advance(20.0)
    assert sb.state is BfdState.UP  # the relay kept it alive
    relay.stop()
    engine.advance(2.0)
    assert sb.state is BfdState.DOWN  # relay gone, primary still dead


def test_relay_spoofs_source_address(engine, bfd_pair):
    network, pa, pb = bfd_pair
    agent = network.add_host("agent", "10.0.0.9")
    network.connect(agent, network.host_by_address("10.0.0.2"),
                    latency=100e-6, bandwidth=100e9)
    sources = []
    network.tap(lambda pkt, ok: sources.append(pkt.src)
                if pkt.protocol == "udp" and pkt.dport == 3784 else None)
    pa.add_session("v1", "10.0.0.2")
    pa.start()
    relay = BfdRelay(engine, agent, pa.export_relay_specs(),
                     rng=DeterministicRandom(5).stream("r"))
    relay.start()
    engine.advance(0.5)
    assert "10.0.0.1" in sources
    assert "10.0.0.9" not in sources  # relay always spoofs


def test_relay_update_specs(engine, bfd_pair):
    network, pa, pb = bfd_pair
    agent = network.add_host("agent", "10.0.0.9")
    network.connect(agent, network.host_by_address("10.0.0.2"),
                    latency=100e-6, bandwidth=100e9)
    pa.add_session("v1", "10.0.0.2")
    pa.start()
    relay = BfdRelay(engine, agent, pa.export_relay_specs(),
                     rng=DeterministicRandom(5).stream("r"))
    relay.start()
    engine.advance(0.3)
    new_session = pa.add_session("v2", "10.0.0.2")
    new_session.start()
    relay.update_specs(pa.export_relay_specs())
    engine.advance(0.3)
    assert len(relay.specs) == 2


def test_fixed_discriminators_for_recovery(engine, bfd_pair):
    """A recovered BFD process reusing discriminators keeps the remote UP."""
    _net, pa, pb = bfd_pair
    sa = pa.add_session("v1", "10.0.0.2")
    sb = pb.add_session("v1", "10.0.0.1")
    pa.start(); pb.start()
    engine.advance(1.0)
    my_disc, your_disc = sa.my_disc, sa.your_disc
    pa.crash()
    # new process resumes within the detection budget, same discriminators
    engine.advance(0.1)
    pa.alive = True
    recovered = pa.add_session("v1b", "10.0.0.2", my_disc=my_disc,
                               your_disc=your_disc, initial_state=BfdState.UP)
    recovered.vrf = "v1"  # same VRF identity on the wire
    recovered.start()
    engine.advance(5.0)
    assert sb.state is BfdState.UP
    assert not [t for t, old, new in sb.state_changes if new is BfdState.DOWN]
