"""Metrics helpers: collector, statistics, report formatting."""

import pytest

from repro.metrics import (
    MetricsCollector,
    format_series,
    format_table,
    mean,
    median,
    stdev,
    summarize,
)
from repro.sim import Engine


def test_collector_records_with_time(engine):
    metrics = MetricsCollector(engine)
    engine.advance(1.0)
    metrics.record("x", 10)
    engine.advance(1.0)
    metrics.record("x", 20)
    assert metrics.series("x") == [(1.0, 10), (2.0, 20)]
    assert metrics.values("x") == [10, 20]
    assert metrics.latest("x") == 20
    assert metrics.latest("missing", default=-1) == -1


def test_collector_counters(engine):
    metrics = MetricsCollector(engine)
    metrics.increment("events")
    metrics.increment("events", 5)
    assert metrics.counter("events") == 6
    assert metrics.counter("other") == 0


def test_collector_sample_every(engine):
    metrics = MetricsCollector(engine)
    value = {"v": 0}
    metrics.sample_every("gauge", 1.0, lambda: value["v"], duration=5.0)
    value["v"] = 7
    engine.run(until=10.0)
    samples = metrics.series("gauge")
    assert len(samples) == 5
    assert all(v == 7 for _t, v in samples)


def test_collector_names(engine):
    metrics = MetricsCollector(engine)
    metrics.record("b", 1)
    metrics.increment("a")
    assert metrics.names() == ["a", "b"]


def test_mean_median_stdev():
    assert mean([1, 2, 3]) == 2
    assert median([1, 2, 3, 4]) == 2.5
    assert median([5]) == 5
    assert stdev([2, 2, 2]) == 0
    assert stdev([1]) == 0
    with pytest.raises(ValueError):
        mean([])


def test_summarize():
    summary = summarize([1.0, 2.0, 3.0])
    assert summary["count"] == 3
    assert summary["mean"] == 2.0
    assert summary["min"] == 1.0 and summary["max"] == 3.0


def test_format_table_aligns_and_handles_none():
    text = format_table(
        ["name", "value"],
        [["short", 1.5], ["a-much-longer-name", None]],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "N/A" in text
    assert "1.500" in text


def test_format_table_large_and_small_numbers():
    text = format_table(["v"], [[123456.789], [0.0000123]])
    assert "1.23e" in text


def test_format_series():
    text = format_series("Fig X", [1, 2], [10.0, 20.0], "n", "seconds")
    assert "Fig X" in text
    assert "seconds" in text
