"""Replication pipeline: coalescing, ordering, pruning, compaction."""

import pytest

from repro.core.replication import (
    ConnectionKeys,
    ReplicationPipeline,
    WriteCoalescer,
    rib_delta_key,
)
from repro.kvstore import KvClient, KvServer
from repro.sim import DeterministicRandom, Engine, Network


@pytest.fixture
def kv_env(engine):
    network = Network(engine, DeterministicRandom(4))
    network.enable_fabric(latency=5e-5)
    client_host = network.add_host("c", "1.1.1.1")
    server_host = network.add_host("s", "1.1.1.2")
    server = KvServer(engine, server_host)
    fast = KvClient(engine, client_host, "1.1.1.2")
    bulk = KvClient(engine, client_host, "1.1.1.2")
    return engine, server, fast, bulk


def test_connection_keys_schema():
    keys = ConnectionKeys("pair0", "v1", "10.0.0.1", 179, "192.0.2.1", 49152)
    assert keys.session == "tensor:pair0:sess:v1|10.0.0.1:179|192.0.2.1:49152"
    assert keys.message("i", 42).endswith(":i:0000000000000042")
    assert keys.message("o", 7).startswith(keys.message_prefix("o"))


def test_coalescer_writes_and_fires_callbacks(kv_env):
    engine, server, fast, _bulk = kv_env
    coalescer = WriteCoalescer(fast)
    done = []
    coalescer.set("a", 1, on_done=lambda: done.append("a"))
    coalescer.set("b", 2, on_done=lambda: done.append("b"))
    engine.run_until_idle()
    assert done == ["a", "b"]
    assert server.store.get("a") == 1
    assert coalescer.records_written == 2


def test_coalescer_batches_while_in_flight(kv_env):
    engine, server, fast, _bulk = kv_env
    coalescer = WriteCoalescer(fast)
    coalescer.set("first", 1)
    for i in range(100):
        coalescer.set(f"k{i}", i)
    engine.run_until_idle()
    # first flush carries 1 record; the rest coalesce into few batches
    assert coalescer.batches_flushed <= 5
    assert len(server.store) == 101


def test_coalescer_set_then_delete_ordering(kv_env):
    engine, server, fast, _bulk = kv_env
    coalescer = WriteCoalescer(fast)
    coalescer.set("k", "v")
    coalescer.delete("k")
    engine.run_until_idle()
    assert server.store.get("k") is None
    assert coalescer.records_deleted == 1


def test_coalescer_unavailable_callback_on_dead_server(kv_env):
    engine, server, fast, _bulk = kv_env
    server.fail()
    lost = []
    coalescer = WriteCoalescer(fast, on_unavailable=lost.append)
    coalescer.set("k", "v")
    engine.run(until=30.0)
    assert lost and lost[0] >= 1
    assert coalescer.failures > 0


def test_pipeline_message_replication_ordered_per_connection(kv_env):
    engine, server, fast, bulk = kv_env
    pipeline = ReplicationPipeline("pair0", fast, bulk)
    keys = ConnectionKeys("pair0", "v1", "10.0.0.1", 179, "192.0.2.1", 49152)
    committed = []
    pipeline.replicate_message(keys, "i", 100, {"m": 1},
                               on_committed=lambda: committed.append(100))
    pipeline.replicate_message(keys, "i", 200, {"m": 2},
                               on_committed=lambda: committed.append(200))
    engine.run_until_idle()
    assert committed == [100, 200]
    assert keys.message("i", 100) in server.store
    assert keys.message("i", 200) in server.store


def test_pipeline_cross_connection_concurrency(kv_env):
    engine, server, fast, bulk = kv_env
    pipeline = ReplicationPipeline("pair0", fast, bulk)
    k1 = ConnectionKeys("pair0", "v1", "10.0.0.1", 179, "192.0.2.1", 49152)
    k2 = ConnectionKeys("pair0", "v2", "10.0.0.1", 179, "192.0.2.2", 49153)
    committed = []
    pipeline.replicate_message(k1, "i", 1, {}, on_committed=lambda: committed.append("c1"))
    pipeline.replicate_message(k2, "i", 1, {}, on_committed=lambda: committed.append("c2"))
    engine.run_until_idle()
    assert sorted(committed) == ["c1", "c2"]
    assert pipeline.locks.contentions == 0  # different connections


def test_pipeline_delete_message_prunes(kv_env):
    engine, server, fast, bulk = kv_env
    pipeline = ReplicationPipeline("pair0", fast, bulk)
    keys = ConnectionKeys("pair0", "v1", "10.0.0.1", 179, "192.0.2.1", 49152)
    pipeline.replicate_message(keys, "i", 1, {"m": 1}, on_committed=lambda: None)
    engine.run_until_idle()
    pipeline.delete_message(keys, "i", 1)
    engine.run_until_idle()
    assert keys.message("i", 1) not in server.store


def test_rib_delta_sequencing(kv_env):
    engine, server, fast, bulk = kv_env
    pipeline = ReplicationPipeline("pair0", fast, bulk)
    s0 = pipeline.record_rib_delta("v1", {"announce": [], "withdraw": [], "in_pos": 1})
    s1 = pipeline.record_rib_delta("v1", {"announce": [], "withdraw": [], "in_pos": 2})
    s_other = pipeline.record_rib_delta("v2", {"announce": [], "withdraw": [], "in_pos": 1})
    engine.run_until_idle()
    assert (s0, s1, s_other) == (0, 1, 0)
    assert rib_delta_key("pair0", "v1", 0) in server.store


def test_compaction_replaces_deltas_with_snapshot(kv_env):
    from repro.bgp import LocRib, PathAttributes, Prefix
    from repro.bgp.rib import Route

    engine, server, fast, bulk = kv_env
    pipeline = ReplicationPipeline("pair0", fast, bulk)
    rib = LocRib()
    for i in range(600):
        rib.offer(Route(Prefix(i << 8, 24), PathAttributes(next_hop="1.1.1.1"), "p"))
        pipeline.record_rib_delta("v1", {"announce": [], "withdraw": [], "in_pos": i})
    engine.run_until_idle()
    assert pipeline.needs_compaction("v1", threshold=500)
    pipeline.compact("v1", rib)
    engine.run_until_idle()
    assert pipeline.compactions == 1
    assert not pipeline.needs_compaction("v1", threshold=500)
    # deltas purged, snapshot chunks + marker present
    pairs = server.store.scan("tensor:pair0:rib:v1:d:")
    assert pairs == []
    marker = server.store.get("tensor:pair0:rib:v1:marker")
    assert marker["chunks"] == 2  # 600 routes / 500 per chunk
    chunks = server.store.scan("tensor:pair0:rib:v1:s:")
    assert sum(len(entries) for _k, entries in chunks) == 600


def test_coalescer_retry_exhaustion_drops_and_resumes(kv_env):
    engine, server, fast, _bulk = kv_env
    server.fail()
    dropped = []
    coalescer = WriteCoalescer(fast, on_unavailable=dropped.append)
    fired = []
    coalescer.set("a", 1, on_done=lambda: fired.append("a"))
    coalescer.set("b", 2, on_done=lambda: fired.append("b"))
    coalescer.delete_many(["x", "y", "z"])
    engine.run(until=60.0)
    # Only the in-flight batch (the lone "a" set — it flushed before the
    # rest were enqueued) is abandoned; its callback never fires, and
    # on_unavailable reports exactly the dropped record count.
    assert dropped == [1]
    assert fired == []
    assert not coalescer._in_flight
    # Records enqueued behind the doomed batch stay pending.  When the
    # database comes back, a later enqueue resumes flushing them.
    server.recover()
    coalescer.set("c", 3, on_done=lambda: fired.append("c"))
    engine.run_until_idle()
    assert fired == ["b", "c"]
    assert "a" not in server.store  # dropped, never retried
    assert server.store.get("b") == 2
    assert server.store.get("c") == 3
    assert server.store.get("x") is None


def test_compaction_marker_floor_is_first_live_delta(kv_env):
    from repro.bgp import LocRib, PathAttributes, Prefix
    from repro.bgp.rib import Route

    engine, server, fast, bulk = kv_env
    pipeline = ReplicationPipeline("pair0", fast, bulk)
    rib = LocRib()
    for i in range(10):
        rib.offer(Route(Prefix(i << 8, 24), PathAttributes(next_hop="1.1.1.1"), "p"))
        pipeline.record_rib_delta("v1", {"announce": [], "withdraw": [], "in_pos": i})
    engine.run_until_idle()
    pipeline.compact("v1", rib)
    engine.run_until_idle()
    marker = server.store.get("tensor:pair0:rib:v1:marker")
    # Deltas 0..9 are folded into the snapshot; the first delta a
    # recovery must replay on top of it is seq 10.
    assert marker["delta_floor"] == 10
    # A second round: the floor advances to the next unwritten seq and
    # only the deltas recorded since the first compaction get purged.
    for i in range(3):
        pipeline.record_rib_delta("v1", {"announce": [], "withdraw": [], "in_pos": 10 + i})
    engine.run_until_idle()
    pipeline.compact("v1", rib)
    engine.run_until_idle()
    marker = server.store.get("tensor:pair0:rib:v1:marker")
    assert marker["delta_floor"] == 13
    assert server.store.scan("tensor:pair0:rib:v1:d:") == []
    assert not pipeline.needs_compaction("v1", threshold=1)


def test_incremental_compaction_rewrites_only_dirty_chunks(kv_env):
    from repro.bgp import LocRib, PathAttributes, Prefix
    from repro.bgp.rib import Route

    engine, server, fast, bulk = kv_env
    pipeline = ReplicationPipeline("pair0", fast, bulk)
    rib = LocRib()
    for i in range(600):
        rib.offer(Route(Prefix(i << 8, 24), PathAttributes(next_hop="1.1.1.1"), "p"))
    pipeline.compact("v1", rib)
    engine.run_until_idle()
    first_round = pipeline.snapshot_chunks_written
    assert first_round == 2  # full snapshot: every chunk written
    assert pipeline.incremental_compactions == 0
    # Touch one prefix: the follow-up compaction rewrites one chunk.
    rib.offer(Route(Prefix(0, 24), PathAttributes(next_hop="2.2.2.2"), "q"))
    pipeline.compact("v1", rib)
    engine.run_until_idle()
    assert pipeline.incremental_compactions == 1
    assert pipeline.snapshot_chunks_written == first_round + 1
    # The snapshot still carries the whole table (601 candidate paths).
    chunks = server.store.scan("tensor:pair0:rib:v1:s:")
    marker = server.store.get("tensor:pair0:rib:v1:marker")
    assert marker["chunks"] == 2
    assert sum(len(entries) for _k, entries in chunks) == 601


def test_verify_read_roundtrip(kv_env):
    engine, server, fast, bulk = kv_env
    pipeline = ReplicationPipeline("pair0", fast, bulk)
    server.store.set("somekey", {"x": 1})
    out = []
    pipeline.verify_read("somekey", on_value=out.append)
    engine.run_until_idle()
    assert out == [{"x": 1}]
