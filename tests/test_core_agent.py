"""The agent server: relay registry, probing, failure semantics."""

import pytest

from repro.core.agent import AgentServer
from repro.control.controller import Controller
from repro.control.ipsla import IpSlaResponder
from repro.sim import DeterministicRandom, Engine, Network


@pytest.fixture
def env(engine):
    network = Network(engine, DeterministicRandom(21))
    network.enable_fabric(latency=5e-5)
    controller_host = network.add_host("ctrl", "10.255.0.1")
    controller = Controller(engine, controller_host)
    agent_host = network.add_host("agent", "10.253.0.1")
    agent = AgentServer(engine, agent_host, controller,
                        rng=DeterministicRandom(21).stream("agent"))
    return engine, network, controller, agent


def test_register_relay_creates_and_updates(env):
    engine, network, _controller, agent = env
    target = network.add_host("remote", "192.0.2.1")
    specs = [{
        "vrf": "v0", "remote_addr": "192.0.2.1", "source_addr": "10.10.0.1",
        "my_disc": 7, "your_disc": 9, "tx_interval": 0.1, "detect_mult": 3,
    }]
    relay = agent.register_relay("pair0", specs)
    engine.advance(0.5)
    assert relay.packets_sent > 0
    again = agent.register_relay("pair0", specs * 2)
    assert again is relay  # updated in place
    assert len(relay.specs) == 2


def test_stop_relay(env):
    engine, network, _controller, agent = env
    network.add_host("remote", "192.0.2.1")
    specs = [{
        "vrf": "v0", "remote_addr": "192.0.2.1", "source_addr": "10.10.0.1",
        "my_disc": 7, "your_disc": 9, "tx_interval": 0.1, "detect_mult": 3,
    }]
    relay = agent.register_relay("pair0", specs)
    agent.stop_relay("pair0")
    engine.advance(0.5)
    sent = relay.packets_sent
    engine.advance(0.5)
    assert relay.packets_sent == sent
    assert "pair0" not in agent.relays


def test_agent_probe_feeds_detector(env):
    engine, network, controller, agent = env

    class FakeMachine:
        name = "gw-1"
        address = "10.1.0.1"

    machine_host = network.add_host("gw-1", "10.1.0.1")
    IpSlaResponder(engine, machine_host)
    agent.probe_machine(FakeMachine())
    engine.advance(1.0)
    machine_host.fail()
    engine.advance(2.0)
    signals = controller.detector._machine("gw-1")
    assert signals.agent_ipsla_down


def test_agent_failure_stops_everything(env):
    engine, network, _controller, agent = env
    network.add_host("remote", "192.0.2.1")
    relay = agent.register_relay("pair0", [{
        "vrf": "v0", "remote_addr": "192.0.2.1", "source_addr": "10.10.0.1",
        "my_disc": 7, "your_disc": 9, "tx_interval": 0.1, "detect_mult": 3,
    }])
    engine.advance(0.3)
    agent.fail()
    sent = relay.packets_sent
    engine.advance(1.0)
    assert relay.packets_sent == sent
    assert not agent.host.up
