"""Extensions the paper discusses as alternatives/future work (§5):
the eBPF interception backend and remote replication for disaster
recovery.
"""


import pytest

from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.failures import FailureInjector
from repro.workloads.topology import build_remote_peer
from repro.workloads.updates import RouteGenerator
from repro.sim.rand import DeterministicRandom


def _system(routes=500, **kwargs):
    system = TensorSystem(seed=400, **kwargs)
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    pair = system.create_pair(
        "pair0", m1, m2, service_addr="10.10.0.1", local_as=65001,
        router_id="10.10.0.1",
        neighbors=[PeerNeighborSpec("192.0.2.1", 64512, vrf_name="v0",
                                    mode="passive")],
    )
    remote = build_remote_peer(system, "remote0", "192.0.2.1", 64512,
                               link_machines=[m1, m2])
    session = remote.peer_with("10.10.0.1", 65001, vrf_name="v0", mode="active")
    pair.start()
    remote.start()
    system.engine.advance(10.0)
    if routes:
        gen = RouteGenerator(DeterministicRandom(4), 64512, next_hop="192.0.2.1")
        remote.speaker.originate_many("v0", gen.routes(routes))
        start = system.engine.now
        remote.speaker.readvertise(session)
        system.engine.advance(10.0)
        receive_time = (pair.speaker.last_apply_time or start) - start
    else:
        receive_time = None
    return system, pair, remote, session, receive_time


# -- eBPF backend -----------------------------------------------------------------


def test_ebpf_system_works_end_to_end():
    system, pair, _remote, session, _t = _system(routes=300,
                                                 hook_technology="ebpf")
    assert session.established
    assert len(pair.speaker.vrfs["v0"].loc_rib) == 300
    assert pair.stack.nfqueue.technology == "ebpf"
    # NSR still works on the eBPF path
    FailureInjector(system).container_failure(pair)
    system.engine.advance(30.0)
    assert session.established
    assert len(pair.speaker.vrfs["v0"].loc_rib) == 300


def test_ebpf_ack_release_latency_lower():
    """The held-ACK release path is cheaper with eBPF: the remote's send
    progress (per-message stall) is shorter."""
    def held_latency(tech):
        system, pair, _remote, session, receive_time = _system(
            routes=2000, hook_technology=tech)
        return receive_time

    netfilter_time = held_latency("netfilter")
    ebpf_time = held_latency("ebpf")
    # receive path is CPU-dominated, so the gain is small but real
    assert ebpf_time <= netfilter_time


# -- remote replication --------------------------------------------------------------


def _fully_acked_time(routes=20_000, **kwargs):
    """Time until the remote sender's table transfer is fully ACKed.

    ACK release waits for replication commits, so this is the metric the
    WAN round trips of synchronous remote replication actually slow down
    (the §5 trade-off; apply time is CPU-bound and hides the effect).
    """
    system = TensorSystem(seed=401, **kwargs)
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    pair = system.create_pair(
        "pair0", m1, m2, service_addr="10.10.0.1", local_as=65001,
        router_id="10.10.0.1",
        neighbors=[PeerNeighborSpec("192.0.2.1", 64512, vrf_name="v0",
                                    mode="passive")],
    )
    remote = build_remote_peer(system, "remote0", "192.0.2.1", 64512,
                               link_machines=[m1, m2])
    session = remote.peer_with("10.10.0.1", 65001, vrf_name="v0", mode="active")
    pair.start(); remote.start()
    system.engine.advance(10.0)
    gen = RouteGenerator(DeterministicRandom(4), 64512, next_hop="192.0.2.1")
    remote.speaker.originate_many("v0", gen.routes(routes))
    start = system.engine.now
    remote.speaker.readvertise(session)
    deadline = start + 120.0
    while (
        remote.speaker.total_updates_sent < routes
        or session.conn.bytes_in_flight > 0
        or session.conn.bytes_unsent > 0
    ):
        system.engine.advance(0.05)
        assert system.engine.now < deadline, "transfer never fully acked"
    return system.engine.now - start


def test_remote_sync_replication_slows_ack_release():
    local_time = _fully_acked_time()
    remote_time = _fully_acked_time(remote_db={"latency": 0.005, "mode": "sync"})
    assert remote_time > local_time * 1.5  # WAN round trips gate the ACKs


def test_remote_async_replication_keeps_performance():
    local_time = _fully_acked_time()
    async_time = _fully_acked_time(remote_db={"latency": 0.005, "mode": "async"})
    assert async_time < local_time * 1.2


def test_remote_store_receives_copies():
    system, pair, remote, session, _t = _system(
        routes=200, remote_db={"latency": 0.005, "mode": "sync"})
    system.engine.advance(2.0)
    # the remote store saw message records too (they are pruned only on
    # the local store; the DR copy retains history until its own GC)
    remote_records = system.remote_db.store.scan("tensor:pair0:msg:")
    assert remote_records  # copies landed across the WAN


def test_remote_mode_validated():
    with pytest.raises(ValueError):
        from repro.core.replication import ReplicationPipeline
        ReplicationPipeline("x", None, None, remote_client=object(),
                            remote_mode="bogus")


def test_nsr_still_zero_loss_with_remote_sync():
    system, pair, remote, session, _t = _system(
        routes=300, remote_db={"latency": 0.005, "mode": "sync"})
    FailureInjector(system).container_failure(pair)
    system.engine.advance(40.0)
    assert session.established
    assert len(pair.speaker.vrfs["v0"].loc_rib) == 300
