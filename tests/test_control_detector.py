"""Failure localization: signal aggregation, confirmation timers, fencing."""

import pytest

from repro.control.detector import FailureDetector
from repro.control.fencing import FencingRegistry
from repro.control.migration import MigrationRecord
from repro.sim import Engine


@pytest.fixture
def detector(engine):
    reports = []
    det = FailureDetector(engine, on_failure=reports.append, confirm_timer=3.0)
    return det, reports, engine


def test_process_dead_reports_application_immediately(detector):
    det, reports, engine = detector
    engine.advance(1.0)
    det.note_process_dead("c1", "bgp", "m1")
    assert len(reports) == 1
    assert reports[0].kind == "application"
    assert reports[0].confirmed_at == 1.0


def test_container_dead_reports_container(detector):
    det, reports, _engine = detector
    det.note_container_dead("c1")
    assert reports[0].kind == "container"
    det.note_container_dead("c1")  # dedup
    assert len(reports) == 1


def test_grpc_plus_ipsla_classifies_container_vs_network(detector):
    det, reports, engine = detector
    # machine says the container is still running -> network failure (E4)
    det.note_machine_status("m1", {"containers": {"c1": {"running": True}}})
    det.note_container_grpc("c1", False, "m1")
    assert reports == []  # one signal is not enough
    det.note_container_ipsla("c1", False, "m1")
    assert len(reports) == 1
    assert reports[0].kind == "container_network"


def test_container_dead_when_machine_says_not_running(detector):
    det, reports, engine = detector
    det.note_machine_status("m1", {"containers": {"c1": {"running": False}}})
    det.note_container_grpc("c1", False, "m1")
    det.note_container_ipsla("c1", False, "m1")
    assert reports[0].kind == "container"


def test_machine_needs_all_three_signals(detector):
    det, reports, engine = detector
    det.note_machine_grpc("m1", False)
    det.note_machine_agent_ipsla("m1", False)
    engine.advance(10.0)
    assert reports == []  # peer IP SLA still fine
    det.note_machine_peer_ipsla("m1", False)
    engine.advance(10.0)
    assert len(reports) == 1
    assert reports[0].kind == "machine_unreachable"


def test_machine_confirmation_timer_waits_3s(detector):
    det, reports, engine = detector
    engine.advance(5.0)
    det.note_machine_grpc("m1", False)
    det.note_machine_agent_ipsla("m1", False)
    det.note_machine_peer_ipsla("m1", False)
    engine.advance(2.9)
    assert reports == []
    engine.advance(0.2)
    assert len(reports) == 1
    assert reports[0].confirmed_at == pytest.approx(8.0)
    assert reports[0].detected_at == pytest.approx(5.0)


def test_transient_recovery_disarms_timer(detector):
    det, reports, engine = detector
    det.note_machine_grpc("m1", False)
    det.note_machine_agent_ipsla("m1", False)
    det.note_machine_peer_ipsla("m1", False)
    engine.advance(1.5)
    det.note_machine_grpc("m1", True)  # jitter recovered
    engine.advance(10.0)
    assert reports == []


def test_machine_failure_suppresses_container_reports(detector):
    det, reports, engine = detector
    det.note_machine_grpc("m1", False)
    det.note_container_grpc("c1", False, "m1")
    det.note_container_ipsla("c1", False, "m1")
    assert reports == []  # attributed to the machine, not the container


def test_transient_machine_blip_releases_deferred_container_report(detector):
    """A container network failure overlapped by a transient host blip:
    the container probes fail while machine signals are down (deferred to
    the machine path), then the blip heals.  The machine path concludes
    false positive — and must hand the still-failing container back for
    classification, or the E4 is lost forever (the probes report edges,
    not levels)."""
    det, reports, engine = detector
    det.note_machine_status("m1", {"containers": {"c1": {"running": True}}})
    det.note_machine_grpc("m1", False)  # the blip starts
    det.note_container_grpc("c1", False, "m1")
    det.note_container_ipsla("c1", False, "m1")
    engine.advance(1.0)
    assert reports == []  # deferred: could still be a machine failure
    det.note_machine_grpc("m1", True)  # blip heals; container stays dark
    assert len(reports) == 1
    assert reports[0].kind == "container_network"
    assert reports[0].target_name == "c1"


def test_machine_recovery_with_healthy_containers_reports_nothing(detector):
    det, reports, engine = detector
    det.note_machine_grpc("m1", False)
    det.note_container_grpc("c1", False, "m1")
    det.note_container_grpc("c1", True, "m1")  # container came back too
    det.note_machine_grpc("m1", True)
    assert reports == []


def test_reset_target_allows_refire(detector):
    det, reports, engine = detector
    for sig in ("grpc", "agent", "peer"):
        getattr(det, f"note_machine_{'grpc' if sig == 'grpc' else sig + '_ipsla'}")("m1", False)
    engine.advance(5.0)
    assert len(reports) == 1
    det.reset_target("m1")
    det.note_machine_grpc("m1", False)
    det.note_machine_agent_ipsla("m1", False)
    det.note_machine_peer_ipsla("m1", False)
    engine.advance(5.0)
    assert len(reports) == 2


# -- fencing ------------------------------------------------------------------


def test_fencing_lifecycle(engine):
    fencing = FencingRegistry(engine)
    fencing.fence("m1")
    assert fencing.is_fenced("m1")
    fencing.fence("m1")  # idempotent
    assert len(fencing) == 1
    fencing.manual_reset("m1")
    assert not fencing.is_fenced("m1")
    assert [action for _t, action, _m in fencing.history] == ["fence", "reset"]


# -- migration record ----------------------------------------------------------


def test_migration_record_phases():
    record = MigrationRecord("container", "c1", failed_at=10.0)
    record.detected_at = 10.31
    record.initiated_at = 10.41
    record.rebooted_at = 11.60
    record.recovered_at = 12.61
    row = record.as_row()
    assert row["detection"] == pytest.approx(0.31)
    assert row["initiate"] == pytest.approx(0.10)
    assert row["migration"] == pytest.approx(1.19)
    assert row["recovery"] == pytest.approx(1.01)
    assert row["total"] == pytest.approx(2.61)
    assert record.complete


def test_migration_record_incomplete_phases_none():
    record = MigrationRecord("container", "c1")
    assert record.detection_time is None
    assert record.total_time is None
    assert not record.complete
