"""The chaos schedule engine (DESIGN.md §9).

Tier-1 runs the fixed corpus seeds as a regression net: every seed that
ever exposed a bug (AS-loop seed dependence, the prune/verify-read ACK
leak, the recovered delta-log overwrite, the recovery scan wedge) stays
green forever.  The ablation test checks the engine's teeth: disabling
delayed ACKs must trip ``ack_durability``, shrink to a tiny schedule,
and emit a repro script that replays the violation deterministically.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.failures.chaos import (
    CORPUS_SEEDS,
    DB_FAILOVER_CORPUS_SEEDS,
    TRACED_CORPUS_SEEDS,
    ChaosSchedule,
    ShrinkBudget,
    _PreparedRun,
    generate_schedule,
    run_schedule,
    shrink_schedule,
    write_repro_script,
)

# ----------------------------------------------------------------------
# generation: pure function of the seed
# ----------------------------------------------------------------------


def test_generation_is_deterministic():
    for seed in range(10):
        assert generate_schedule(seed).to_dict() == generate_schedule(seed).to_dict()


def test_schedule_roundtrips_through_dict():
    schedule = generate_schedule(3)
    clone = ChaosSchedule.from_dict(schedule.to_dict())
    assert clone.to_dict() == schedule.to_dict()
    copy = schedule.copy()
    copy.injections.clear()
    assert schedule.injections  # copy is deep enough to mutate freely


def test_generated_schedules_respect_composition_rules():
    """Every generated run must be recoverable by design."""
    for seed in range(40):
        schedule = generate_schedule(seed)
        hard = [e for e in schedule.injections
                if e["scenario"] in ("application", "container",
                                     "container_network", "host_machine",
                                     "host_network")]
        soft = [e for e in schedule.injections if e not in hard]
        assert 2 <= len(schedule.injections) <= 5
        assert 1 <= len(hard) <= 3
        # hard injections spaced wider than a full recovery
        times = sorted(e["at"] for e in hard)
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= 18.0
        # at most one machine-level failure (fencing is permanent)
        machine_level = [e for e in hard
                        if e["scenario"] in ("host_machine", "host_network")]
        assert len(machine_level) <= 1
        last_hard = max(e["at"] for e in hard)
        for event in soft:
            if event["scenario"] == "transient_network":
                # stays under the 3 s confirmation timer
                assert event["duration"] < 3.0
            elif event["scenario"] == "database_blip":
                # stays under the write-retry budget
                assert event["duration"] <= 1.2
            elif event["scenario"] == "agent":
                # agent death only after the last hard failure confirmed
                assert event["at"] >= last_hard + 6.0
        assert schedule.duration > last_hard


# ----------------------------------------------------------------------
# the tier-1 regression corpus
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_corpus_seed_passes_all_oracles(seed):
    schedule = generate_schedule(seed)
    result = run_schedule(schedule)
    assert result.first_violation is None, result.summary()


@pytest.mark.parametrize("seed", TRACED_CORPUS_SEEDS)
def test_traced_corpus_seed_passes_phase_latency_oracle(seed):
    """Seeds 6-9 run under the causal tracer (DESIGN.md §10): every
    standard oracle plus ``phase_latency``, which re-derives the
    delayed-ACK invariant from the recorded spans at each settle
    point, must stay green through multi-failure schedules."""
    schedule = generate_schedule(seed)
    result = run_schedule(schedule, tracing=True)
    assert result.first_violation is None, result.summary()
    store = result.system.trace_store
    assert store is not None and len(store) > 0
    assert store.delayed_ack_violations() == []
    # the schedule's hard failures leave migration spans behind, each
    # linking the failed incarnation to its replacement (same container
    # for in-place app restarts, the standby for backup activations)
    for span in store.spans(name="migration", ended=True):
        if span.attrs["kind"] == "backup_activation":
            assert span.attrs["from_container"] != span.attrs["to_container"]
        else:
            assert span.attrs["from_container"] == span.attrs["to_container"]


@pytest.mark.parametrize("seed", DB_FAILOVER_CORPUS_SEEDS)
def test_db_failover_corpus_seed_passes_all_oracles(seed):
    """Seeds 10-12 permanently kill the KV primary mid-schedule, on top
    of the seed's base injections.  The controller's monitor must fail
    over on its own — nothing in the harness calls promote_replica —
    with every NSR oracle green: no ack-durability violation, held ACKs
    drain inside the liveness streak limit."""
    schedule = generate_schedule(seed, db_failover=True)
    assert any(e["scenario"] == "database_failover"
               for e in schedule.injections)
    result = run_schedule(schedule)
    assert result.first_violation is None, result.summary()
    assert result.system.db_cluster.failovers == 1
    assert result.system.db_cluster.epoch == 2
    assert any(kind == "database-failover"
               for _t, kind, _d in result.system.controller.events)


def test_db_failover_flag_leaves_base_schedule_intact():
    """The failover injection draws from its own named stream: the rest
    of the schedule must be bit-identical with and without the flag, so
    the corpus seeds keep regressing exactly what they always did."""
    for seed in DB_FAILOVER_CORPUS_SEEDS:
        base = generate_schedule(seed).to_dict()
        augmented = generate_schedule(seed, db_failover=True).to_dict()
        stripped = dict(augmented)
        stripped["injections"] = [
            e for e in augmented["injections"]
            if e["scenario"] != "database_failover"
        ]
        assert stripped == base


def test_trace_survives_primary_to_backup_migration():
    """Regression: a container failure under tracing must leave a
    ``migration`` span bridging the two process incarnations, with
    update traces recorded on both sides of the switchover."""
    from repro.failures import FailureInjector
    from repro.workloads.updates import RouteGenerator

    from conftest import build_tensor_fixture

    system, pair, remotes = build_tensor_fixture(
        seed=13, routes=20, tracing=True
    )
    engine = system.engine
    store = system.trace_store
    before = len(store.update_ids(msg="UpdateMessage"))
    assert before > 0
    failed_name = pair.active_container.name

    FailureInjector(system).container_failure(pair=pair)
    engine.advance(30.0)

    (span,) = store.spans(name="migration", ended=True)
    assert span.attrs["kind"] == "backup_activation"
    assert span.attrs["from_container"] == failed_name
    assert span.attrs["to_container"] == pair.active_container.name
    assert span.attrs["to_container"] != failed_name
    assert span.duration > 0.0

    # new traffic after the switchover traces end to end on the new
    # incarnation, with the delayed-ACK invariant intact throughout
    remote, session = remotes[0]
    gen = RouteGenerator(system.rng.fork("post-migration"), 64512,
                         next_hop="192.0.2.1")
    remote.speaker.originate_many(session.config.vrf_name, gen.routes(10))
    remote.speaker.readvertise(session)
    engine.advance(5.0)

    after = len(store.update_ids(msg="UpdateMessage"))
    assert after > before
    assert store.delayed_ack_violations() == []


# ----------------------------------------------------------------------
# replay determinism + the ablation acceptance check
# ----------------------------------------------------------------------


def test_ablation_replays_identically():
    """Two runs of the same (schedule, hold_acks) see the same violation
    at the same virtual instant — the property shrinking relies on.
    (Details are compared modulo the process-global TCP ISS counter,
    which offsets absolute sequence numbers between runs.)"""
    schedule = generate_schedule(0)
    first = run_schedule(schedule, hold_acks=False)
    second = run_schedule(schedule, hold_acks=False)
    assert first.first_violation is not None
    assert first.first_violation.oracle == second.first_violation.oracle
    assert first.first_violation.time == second.first_violation.time


def test_ablation_trips_shrinks_and_replays(tmp_path):
    """hold_acks=False is the designed-in bug: the §3.1.1 invariant must
    trip, the shrinker must reduce the schedule to <= 2 injections, and
    the emitted repro script must replay it from a fresh process."""
    schedule = generate_schedule(0)
    result = run_schedule(schedule, hold_acks=False)
    violation = result.first_violation
    assert violation is not None
    assert violation.oracle == "ack_durability"

    shrunk, final, _runs = shrink_schedule(
        schedule, hold_acks=False, expect_oracle="ack_durability"
    )
    assert final is not None
    assert final.first_violation.oracle == "ack_durability"
    assert len(shrunk.injections) <= 2

    path = str(tmp_path / "chaos_repro_0.py")
    write_repro_script(shrunk, violation, False, path)
    root = pathlib.Path(__file__).resolve().parent.parent
    env = dict(os.environ, PYTHONPATH=str(root / "src"))
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(root),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "reproduced: ack_durability" in proc.stdout


# ----------------------------------------------------------------------
# shrink budgets and partial-run detection
# ----------------------------------------------------------------------


def test_shrink_budget_splits_and_reports_exhaustion():
    budget = ShrinkBudget.split(40)
    assert budget.limits["schedule"] + budget.limits["config"] == 40
    assert budget.limits["config"] >= 2  # config pool can never be starved
    assert budget.exhausted() == ()
    while budget.take("config"):
        pass
    assert budget.exhausted() == ("config",)
    assert "exhausted: config" in budget.describe()
    # the schedule pool is untouched by draining config
    assert budget.remaining("schedule") == budget.limits["schedule"]
    assert budget.total_used == budget.limits["config"]


def test_shrink_respects_per_dimension_budget():
    """A starved schedule pool must not consume the config pool: the
    config dimension (dropping the preloaded table) still gets its
    reserved reruns even when schedule shrinking exhausts its own."""
    schedule = generate_schedule(0)
    assert schedule.initial_routes  # seed 0 preloads a table
    budget = ShrinkBudget({"schedule": 3, "config": 2})
    shrunk, final, runs = shrink_schedule(
        schedule, hold_acks=False, expect_oracle="ack_durability",
        budget=budget,
    )
    assert final is not None
    assert runs == budget.total_used
    assert "schedule" in budget.exhausted()
    # the config pool was charged independently of the schedule pool
    assert budget.used["config"] >= 1
    assert budget.used["schedule"] <= 3


def test_prepared_run_reports_partial_when_stopped_early():
    """A run whose engine never reaches the deadline has no oracle
    verdict for the tail: finish() must mark it partial, and the shard
    results must carry the flag."""
    schedule = generate_schedule(0)
    prepared = _PreparedRun(schedule, stop_on_violation=False)
    prepared.step_to(prepared.engine.now + 1.0)  # far short of the deadline
    result = prepared.finish()
    assert result.partial
    assert not result.completed
    assert result.first_violation is None  # "no violations" yet not a pass


def test_full_run_and_violation_halt_both_count_as_completed():
    schedule = generate_schedule(0)
    full = run_schedule(schedule)
    assert full.completed and not full.partial
    # a violation halt did what it set out to do: also completed
    tripped = run_schedule(schedule, hold_acks=False)
    assert tripped.first_violation is not None
    assert tripped.completed


def test_cli_exit_codes_distinguish_partial_runs(monkeypatch, capsys):
    """`--corpus` historically exited 0 whenever no violation was seen,
    even if a run silently stalled mid-schedule under
    stop_on_violation=False.  Partial runs now exit 2."""
    from repro.failures import chaos

    class _FakeSuite:
        violations = ()
        first_violation = None

        def summary(self):
            return "ok"

    class _FakeEngine:
        now = 12.0

    class _FakeSystem:
        engine = _FakeEngine()

    def fake_run(schedule, hold_acks=True, stop_on_violation=True,
                 tracing=False):
        return chaos.ChaosResult(
            schedule, _FakeSuite(), _FakeSystem(), 100,
            completed=stop_on_violation,  # partial only when kept going
        )

    monkeypatch.setattr(chaos, "run_schedule", fake_run)
    assert chaos.main(["--seed", "0"]) == 0
    assert chaos.main(["--seed", "0", "--keep-going"]) == 2
    assert chaos.main(["--corpus", "--keep-going"]) == 2
    out = capsys.readouterr().out
    assert "PARTIAL" in out
