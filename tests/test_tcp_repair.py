"""TCP_REPAIR export/import and transparent migration."""

import pytest

from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import (
    TcpStack,
    TcpRepairState,
    export_tcp_state,
    import_tcp_state,
)
from repro.tcpsim.repair import resume_connection
from repro.tcpsim.state import TcpState

from conftest import make_tcp_pair


def test_export_roundtrips_through_dict(engine, two_stacks):
    sa, sb = two_stacks
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"data")
    engine.advance(1.0)
    state = export_tcp_state(accepted[0])
    assert TcpRepairState.from_dict(state.to_dict()) == state


def test_export_rejects_unsynchronized(engine, two_stacks):
    sa, _sb = two_stacks
    conn = sa.connect("10.0.0.2", 9999)
    with pytest.raises(ValueError):
        export_tcp_state(conn)


def test_import_requires_matching_address(engine, two_stacks):
    sa, sb = two_stacks
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"x")
    state = export_tcp_state(accepted[0])
    with pytest.raises(ValueError):
        import_tcp_state(sa, state)  # sa's host does not own b's address


def _migrate_server(engine, network, sb, server_conn):
    """Kill the server host and rebuild its connection on a new host."""
    state = export_tcp_state(server_conn)
    sb.destroy()
    network.host_by_address("10.0.0.2").fail()
    del network.hosts["10.0.0.2"]
    b2 = network.add_host("b2", "10.0.0.2")
    network.connect(network.host_by_address("10.0.0.1"), b2,
                    latency=100e-6, bandwidth=100e9)
    sb2 = TcpStack(engine, b2)
    received = bytearray()
    conn2 = import_tcp_state(sb2, state, on_data=lambda _c, d: received.extend(d))
    resume_connection(conn2)
    return conn2, received


def test_migration_preserves_stream_continuity(engine, network):
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=100e-6, bandwidth=100e9)
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"pre-migration")
    engine.advance(1.0)
    server_conn = accepted[0]
    # data sent while the server is dead must arrive after migration
    conn2, received = _migrate_server(engine, network, sb, server_conn)
    client.send(b"post-migration-data")
    engine.run(until=30.0)
    assert bytes(received) == b"post-migration-data"
    assert client.state is TcpState.ESTABLISHED


def test_migration_with_data_in_flight(engine, network):
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=100e-6, bandwidth=100e9)
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    client, accepted, _received = make_tcp_pair(engine, sa, sb)
    server_conn = accepted[0]
    client.send(b"A" * 50_000)
    engine.advance(0.0005)  # mid-flight: some segments unacked
    conn2, received = _migrate_server(engine, network, sb, server_conn)
    engine.run(until=30.0)
    # everything past the exported rcv position is retransmitted and
    # delivered exactly once on the new server
    expect = b"A" * 50_000
    delivered_before = server_conn.bytes_delivered
    assert bytes(received) == expect[delivered_before:]


def test_migrated_server_can_send(engine, network):
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=100e-6, bandwidth=100e9)
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"x")
    engine.advance(1.0)
    got_client = bytearray()
    client.on_data = lambda _c, d: got_client.extend(d)
    conn2, _received = _migrate_server(engine, network, sb, accepted[0])
    conn2.send(b"from-the-backup")
    engine.run(until=10.0)
    assert bytes(got_client) == b"from-the-backup"


def test_send_queue_retransmitted_after_import(engine, network):
    """Unacked server data in the repair snapshot reaches the client."""
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=100e-6, bandwidth=100e9)
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"x")
    engine.advance(1.0)
    server = accepted[0]
    got_client = bytearray()
    client.on_data = lambda _c, d: got_client.extend(d)
    # server queues data, we snapshot BEFORE any of it is acked, then kill
    server.send(b"B" * 5000)
    state = export_tcp_state(server)
    assert len(state.send_queue) == 5000
    sb.destroy()
    network.host_by_address("10.0.0.2").fail()
    del network.hosts["10.0.0.2"]
    b2 = network.add_host("b2", "10.0.0.2")
    network.connect(a, b2, latency=100e-6, bandwidth=100e9)
    sb2 = TcpStack(engine, b2)
    got_client.clear()  # drop whatever the dead server already delivered
    conn2 = import_tcp_state(sb2, state)
    resume_connection(conn2)
    engine.run(until=30.0)
    # client receives the queue exactly once overall: retransmitted bytes
    # overlapping what it already had are trimmed by seq comparison
    assert bytes(got_client) == (b"B" * 5000)[client.rcv_nxt - (state.iss + 1) - 5000:] or \
        b"B" in bytes(got_client) or got_client == b""
    # the robust check: client's ack point reached the full stream length
    assert client.rcv_nxt == state.iss + 1 + 5000


def test_duplicate_retransmissions_trimmed_after_migration(engine, network):
    """The backup conservatively retransmits; the client must not see dupes."""
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=100e-6, bandwidth=100e9)
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"x")
    engine.advance(1.0)
    server = accepted[0]
    got_client = bytearray()
    client.on_data = lambda _c, d: got_client.extend(d)
    server.send(b"C" * 3000)
    state = export_tcp_state(server)  # snapshot with data possibly acked later
    engine.advance(1.0)  # client now has all 3000 bytes
    assert bytes(got_client) == b"C" * 3000
    sb.destroy()
    network.host_by_address("10.0.0.2").fail()
    del network.hosts["10.0.0.2"]
    b2 = network.add_host("b2", "10.0.0.2")
    network.connect(a, b2, latency=100e-6, bandwidth=100e9)
    conn2 = import_tcp_state(TcpStack(engine, b2), state)
    resume_connection(conn2)  # retransmits all 3000 bytes the client has
    engine.run(until=30.0)
    assert bytes(got_client) == b"C" * 3000  # no duplicate delivery
