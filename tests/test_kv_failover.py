"""Automatic database failover: epoch fencing, delta-safe resync,
client repoint, and the controller-side health monitor (DESIGN.md §12).

These pin the three bugfixes this subsystem shipped with:

- promote_replica used to leave the old primary's replication channel
  and epoch untouched, so a client that never repointed kept writing
  into the cluster (split brain);
- resync_replica used to copy a point-in-time snapshot, silently losing
  writes acknowledged mid-copy;
- the coalescer's fire-and-forget delete pruning used to drop exhausted
  batches on the floor, leaking snapshot-store records forever.
"""

import pytest

from conftest import build_tensor_fixture
from repro.control.db_monitor import CONFIRM_WINDOW, DbFailoverMonitor
from repro.core.replication import WriteCoalescer
from repro.failures.injector import FailureInjector
from repro.kvstore import KvClient, KvServer, ReplicatedKvCluster
from repro.kvstore.client import CAUSE_FENCED, CAUSE_REFUSED
from repro.sim import DeterministicRandom, Network
from repro.sim.rpc import RefusalResponder
from repro.workloads.updates import RouteGenerator


@pytest.fixture
def cluster(engine):
    network = Network(engine, DeterministicRandom(5))
    network.enable_fabric(latency=50e-6)
    client_host = network.add_host("c", "1.1.1.1")
    primary_host = network.add_host("p", "1.1.1.2")
    replica_host = network.add_host("r", "1.1.1.3")
    cluster = ReplicatedKvCluster(engine, primary_host, replica_host)
    client = KvClient(engine, client_host, cluster.primary_addr,
                      epoch=cluster.epoch)
    return engine, cluster, client


# -- satellite 1: split-brain fencing -----------------------------------------


def test_stale_client_fenced_after_failover(cluster):
    """A client that never learns about the failover keeps writing to the
    old primary; the rebooted old primary must reject those writes."""
    engine, cluster, stale = cluster
    stale.set("before", 1, on_done=lambda: None)
    engine.run_until_idle()
    cluster.fail_primary()
    old_primary = cluster.primary
    cluster.promote_replica()
    old_primary.reboot()  # comes back with RAM intact — and the fence
    outcomes = []
    stale.set("split", "brain", on_done=lambda: outcomes.append("ok"),
              on_error=lambda _m, cause: outcomes.append(cause))
    engine.run_until_idle()
    assert outcomes == [CAUSE_FENCED]
    assert old_primary.fenced_writes == 1
    assert old_primary.store.get("split") is None
    # and nothing leaked into the new primary through a stale
    # replication channel (the detach half of the fence)
    assert cluster.primary.store.get("split") is None


def test_fence_applies_on_new_primary_too(cluster):
    """An old-epoch write reaching the *new* primary is also rejected —
    the fence is an epoch floor, not a per-node special case."""
    engine, cluster, _client = cluster
    cluster.fail_primary()
    new_addr = cluster.promote_replica()
    any_host = cluster.primary.host
    stale = KvClient(engine, any_host, new_addr, epoch=1)
    outcomes = []
    stale.set("k", 1, on_done=lambda: outcomes.append("ok"),
              on_error=lambda _m, cause: outcomes.append(cause))
    engine.run_until_idle()
    assert outcomes == [CAUSE_FENCED]


def test_unstamped_writes_pass_the_fence(cluster):
    """Raw clients (epoch=None) predate cluster management; their writes
    carry no epoch and must keep working after a promotion."""
    engine, cluster, _client = cluster
    cluster.fail_primary()
    new_addr = cluster.promote_replica()
    raw = KvClient(engine, cluster.replica.host, new_addr)
    done = []
    raw.set("k", "v", on_done=lambda: done.append(True))
    engine.run_until_idle()
    assert done and cluster.primary.store.get("k") == "v"


# -- satellite 2: delta-safe resync -------------------------------------------


def test_write_during_resync_survives_next_failover(cluster):
    """A set acknowledged while the bulk copy is in flight must land on
    the re-synchronized replica (journal replay), so a *second* failover
    does not lose it."""
    engine, cluster, client = cluster
    client.mset([(f"k{i}", i) for i in range(2000)], on_done=lambda: None)
    engine.run_until_idle()

    cluster.fail_primary()
    new_addr = cluster.promote_replica()
    client.repoint(new_addr, epoch=cluster.epoch)

    finished = []
    cluster.resync_replica(on_done=lambda: finished.append(engine.now))
    started = engine.now
    # issued immediately: the 2000-record copy takes ~0.1 s of simulated
    # time, so this write is acknowledged strictly inside the window
    client.set("mid", "copy", on_done=lambda: None)
    engine.run_until_idle()

    assert finished and finished[0] > started
    assert cluster.resyncs == 1
    assert cluster.replica.store.get("mid") == "copy"

    cluster.fail_primary()
    cluster.promote_replica()
    assert cluster.primary.store.get("mid") == "copy"
    assert cluster.primary.store.get("k1999") == 1999


def test_resync_rejects_concurrent_resync(cluster):
    engine, cluster, _client = cluster
    cluster.resync_replica()
    with pytest.raises(RuntimeError):
        cluster.resync_replica()
    engine.run_until_idle()
    assert cluster.resyncs == 1


# -- satellite 3: exhausted delete batches re-queue ---------------------------


def test_exhausted_delete_batch_requeues_not_drops(engine):
    """Prune deletes are fire-and-forget; before the fix an exhausted
    batch vanished and the snapshot-store records leaked forever."""
    network = Network(engine, DeterministicRandom(6))
    network.enable_fabric(latency=50e-6)
    client_host = network.add_host("c", "1.1.1.1")
    server_host = network.add_host("s", "1.1.1.2")
    server = KvServer(engine, server_host)
    client = KvClient(engine, client_host, "1.1.1.2")
    unavailable = []
    coalescer = WriteCoalescer(client, on_unavailable=unavailable.append)
    coalescer.set("k", "v")
    engine.run_until_idle()

    server.fail()
    coalescer.delete("k")
    engine.run_until_idle()  # retries exhaust; timers are finite
    assert coalescer.requeued_deletes == 1
    assert unavailable == []  # deletes are not the fail-safe channel
    assert server.store.get("k") == "v"  # not pruned yet, not lost

    server.recover()
    coalescer.kick()
    engine.run_until_idle()
    assert server.store.get("k") is None  # prune finally landed


# -- error causes and repoint -------------------------------------------------


def test_closed_port_refuses_fast(engine):
    """A truly closed KV port answers with a reset, not silence: the
    client sees CAUSE_REFUSED well before its timeout would fire."""
    network = Network(engine, DeterministicRandom(7))
    network.enable_fabric(latency=50e-6)
    client_host = network.add_host("c", "1.1.1.1")
    server_host = network.add_host("s", "1.1.1.2")
    server = KvServer(engine, server_host)
    refuser = RefusalResponder(engine, server_host)
    client = KvClient(engine, client_host, "1.1.1.2")
    server.close()
    outcomes = []
    start = engine.now
    client.set("k", 1, on_done=lambda: outcomes.append("ok"),
               on_error=lambda _m, cause: outcomes.append(
                   (cause, engine.now - start)),
               timeout=5.0)
    engine.run_until_idle()
    cause, elapsed = outcomes[0]
    assert cause == CAUSE_REFUSED
    assert elapsed < 0.05
    assert refuser.refusals == 1


def test_repoint_reissues_in_flight_batch(cluster):
    """A batch stuck retrying against a dead primary must commit on the
    new primary once the repoint lands — with a fresh retry budget."""
    engine, cluster, client = cluster
    unavailable = []
    coalescer = WriteCoalescer(client, on_unavailable=unavailable.append)
    coalescer.set("a", 1)
    engine.run_until_idle()

    cluster.fail_primary()
    coalescer.set("b", 2)
    engine.advance(0.3)  # in flight against the dead primary
    new_addr = cluster.promote_replica()
    client.repoint(new_addr, epoch=cluster.epoch)
    engine.run_until_idle()

    assert cluster.primary.store.get("b") == 2
    assert unavailable == []
    assert client.endpoint_generation == 1


# -- the controller-side monitor ----------------------------------------------


def _monitored_cluster(engine, seed=8):
    network = Network(engine, DeterministicRandom(seed))
    network.enable_fabric(latency=50e-6)
    monitor_host = network.add_host("ctl", "1.1.1.9")
    primary_host = network.add_host("p", "1.1.1.2")
    replica_host = network.add_host("r", "1.1.1.3")
    client_host = network.add_host("c", "1.1.1.1")
    cluster = ReplicatedKvCluster(engine, primary_host, replica_host)
    events = []
    monitor = DbFailoverMonitor(
        engine, monitor_host, cluster,
        on_failover=lambda addr, epoch: events.append(
            (engine.now, addr, epoch)),
    )
    client = KvClient(engine, client_host, cluster.primary_addr,
                      epoch=cluster.epoch)
    return cluster, monitor, client, events


def test_monitor_promotes_within_window(engine):
    cluster, monitor, client, events = _monitored_cluster(engine)
    client.set("k", 1, on_done=lambda: None)
    engine.advance(2.0)
    killed_at = engine.now
    cluster.fail_primary(permanent=True)
    engine.advance(10.0)
    assert cluster.failovers == 1 and cluster.epoch == 2
    (when, addr, epoch), = events
    assert addr == "1.1.1.3" and epoch == 2
    # first missed probe + confirmation window + one probe period of slack
    assert when - killed_at < CONFIRM_WINDOW + 2.0
    assert cluster.primary.store.get("k") == 1  # sync replica had the data
    monitor.stop()


def test_monitor_ignores_short_blip(engine):
    """An outage shorter than the confirmation window recovers in place:
    no promotion, no epoch bump (§3.3.3 discipline applied to the DB)."""
    cluster, monitor, _client, events = _monitored_cluster(engine)
    engine.advance(2.0)
    cluster.primary.fail()
    engine.schedule(1.5, cluster.primary.recover)
    engine.advance(15.0)
    assert cluster.failovers == 0 and cluster.epoch == 1
    assert events == []
    monitor.stop()


def test_monitor_does_not_pingpong_onto_dead_node(engine):
    """After one failover the replica slot holds the dead old primary; a
    second confirmed death must wait, not promote a corpse."""
    cluster, monitor, _client, events = _monitored_cluster(engine)
    engine.advance(2.0)
    cluster.fail_primary(permanent=True)
    engine.advance(10.0)
    assert cluster.failovers == 1
    cluster.fail_primary(permanent=True)  # the promoted node dies too
    engine.advance(15.0)
    assert cluster.failovers == 1 and cluster.epoch == 2
    monitor.stop()


# -- end to end on a full TensorSystem ----------------------------------------


def test_automatic_failover_drains_held_acks_mid_burst():
    """Kill the KV primary in the middle of an UPDATE burst: the
    controller must detect, promote and repoint on its own, and every
    ACK held against the dead primary must drain."""
    system, pair, remotes = build_tensor_fixture(seed=505, routes=300)
    engine = system.engine
    remote, session = remotes[0]

    gen = RouteGenerator(DeterministicRandom(909).fork("burst"), 64512,
                         next_hop="192.0.2.1")
    remote.speaker.originate_many(session.config.vrf_name,
                                  gen.routes(200, base="55.0.0.0"))
    remote.speaker.readvertise(session)
    engine.advance(0.05)  # the burst is in flight

    injector = FailureInjector(system)
    injector.database_failover()
    killed_at = engine.now
    engine.advance(20.0)

    assert system.db_cluster.failovers == 1
    assert system.db_cluster.epoch == 2
    failover_events = [
        (when, detail) for when, kind, detail in system.controller.events
        if kind == "database-failover"
    ]
    assert len(failover_events) == 1
    when, (new_addr, epoch) = failover_events[0]
    assert epoch == 2 and when - killed_at < CONFIRM_WINDOW + 2.0
    assert system.db.host.address == new_addr

    # held ACKs drained and the session never dropped
    assert pair.speaker.tcp_queue.held_count() == 0
    assert session.established

    # the rebooted old primary is fenced against never-repointed writers
    old_primary = system.db_cluster.replica
    assert old_primary.failed
    old_primary.reboot()
    stale = KvClient(engine, pair.active_container.endpoint,
                     old_primary.host.address, epoch=1)
    outcomes = []
    stale.set("tensor:stale", 1, on_done=lambda: outcomes.append("ok"),
              on_error=lambda _m, c: outcomes.append(c))
    engine.advance(2.0)
    assert outcomes == [CAUSE_FENCED]
    assert old_primary.store.get("tensor:stale") is None


def test_database_blip_does_not_fail_over_system():
    system, pair, remotes = build_tensor_fixture(seed=506, routes=100)
    injector = FailureInjector(system)
    injector.transient_database_failure(duration=1.2)
    system.engine.advance(20.0)
    assert system.db_cluster.failovers == 0
    assert system.db_cluster.epoch == 1
    assert not any(kind == "database-failover"
                   for _t, kind, _d in system.controller.events)
    assert pair.speaker.tcp_queue.held_count() == 0
