"""Loss recovery, retransmission, congestion control behaviour."""

import pytest

from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import RenoCongestionControl, TcpStack
from repro.tcpsim.state import TcpState

from conftest import make_tcp_pair


def lossy_pair(engine, loss, seed=3):
    network = Network(engine, DeterministicRandom(seed))
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=100e-6, bandwidth=1e9, loss=loss)
    return TcpStack(engine, a), TcpStack(engine, b)


@pytest.mark.parametrize("loss", [0.01, 0.05, 0.1])
def test_transfer_survives_loss(engine, loss):
    sa, sb = lossy_pair(engine, loss)
    payload = bytes(i % 256 for i in range(120_000))
    client, _accepted, received = make_tcp_pair(engine, sa, sb, payload=payload)
    engine.run(until=120.0)
    assert bytes(received) == payload
    assert client.retransmissions > 0


def test_loss_causes_retransmissions_not_duplicated_delivery(engine):
    sa, sb = lossy_pair(engine, 0.08)
    payload = bytes(range(256)) * 200
    _client, _accepted, received = make_tcp_pair(engine, sa, sb, payload=payload)
    engine.run(until=60.0)
    assert bytes(received) == payload  # exactly once, in order


def test_handshake_survives_syn_loss(engine):
    sa, sb = lossy_pair(engine, 0.5, seed=11)
    client, accepted, _ = make_tcp_pair(engine, sa, sb)
    engine.run(until=60.0)
    assert client.state is TcpState.ESTABLISHED


def test_rto_backoff_on_blackhole(engine, two_stacks):
    sa, sb = two_stacks
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"x")
    engine.advance(1.0)
    sb.host.fail()  # blackhole
    client.send(b"more data")
    start = engine.now
    engine.advance(10.0)
    # exponential backoff: far fewer than 10s/min_rto retransmissions
    assert 2 <= client.retransmissions <= 8


def test_user_timeout_resets_connection(engine, two_stacks):
    sa, sb = two_stacks
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"x")
    engine.advance(1.0)
    resets = []
    client.on_reset = lambda _c, reason: resets.append(reason)
    sb.host.fail()
    client.send(b"void")
    engine.advance(300.0)
    assert resets == ["user-timeout"]
    assert client.state is TcpState.CLOSED


# -- congestion control unit tests ------------------------------------------


def test_reno_slow_start_doubles_per_rtt_equivalent():
    cc = RenoCongestionControl(mss=1000)
    initial = cc.cwnd
    cc.on_ack(1000)
    assert cc.cwnd == initial + 1000
    assert cc.in_slow_start


def test_reno_congestion_avoidance_linear():
    cc = RenoCongestionControl(mss=1000)
    cc.ssthresh = cc.cwnd  # force CA
    start = cc.cwnd
    # a full window of acks grows cwnd by one MSS
    acked = 0
    while acked < start:
        cc.on_ack(1000)
        acked += 1000
    assert start < cc.cwnd <= start + 2 * 1000


def test_reno_fast_retransmit_halves():
    cc = RenoCongestionControl(mss=1000)
    cc.cwnd = 64_000
    cc.ssthresh = 32_000
    cc.on_fast_retransmit()
    assert cc.ssthresh == 32_000
    assert cc.fast_recovery
    cc.on_ack(1000)  # full ack deflates
    assert not cc.fast_recovery
    assert cc.cwnd == 32_000


def test_reno_timeout_collapses_to_one_mss():
    cc = RenoCongestionControl(mss=1000)
    cc.cwnd = 64_000
    cc.on_timeout()
    assert cc.cwnd == 1000
    assert cc.ssthresh == 32_000
    assert cc.in_slow_start


def test_reno_ssthresh_floor_two_mss():
    cc = RenoCongestionControl(mss=1000)
    cc.cwnd = 1000
    cc.on_timeout()
    assert cc.ssthresh == 2000


def test_fast_retransmit_triggered_by_triple_dupack(engine):
    # 1 loss early in a long transfer triggers dup-acks and fast retransmit
    sa, sb = lossy_pair(engine, 0.02, seed=21)
    payload = b"q" * 500_000
    client, _accepted, received = make_tcp_pair(engine, sa, sb, payload=payload)
    engine.run(until=120.0)
    assert bytes(received) == payload
    assert client.cc.loss_events + client.cc.timeout_events >= 1
