"""Dynamic shard rebalancing: policy unit tests and bit-identity.

The migration machinery's core claim (DESIGN.md §11): shard placement
never affects simulation results, so moving a live shard between
workers mid-run — replay-based adoption, epoch-bumped codec streams —
leaves fleet Loc-RIB digests, chaos oracle verdicts, and trace phase
summaries bit-identical to the static-partition run.  ``force_moves``
drives migrations deterministically even on balanced workloads.
"""

import functools

import pytest

from repro.failures.chaos import (
    chaos_corpus_horizon,
    chaos_corpus_specs,
    generate_schedule,
    run_schedule,
)
from repro.sim.parallel import (
    ParallelRunner,
    RebalanceConfig,
    rebalance_moves,
)
from repro.workloads.fleet import fleet_site_specs

pytestmark = pytest.mark.slow


# ----------------------------------------------------------------------
# the policy: a pure function of busy stats and assignment
# ----------------------------------------------------------------------

def test_rebalance_moves_noop_when_balanced():
    busy = {"a": 1.0, "b": 1.0}
    assert rebalance_moves(busy, {"a": 0, "b": 1}, 2) == []


def test_rebalance_moves_needs_two_workers():
    assert rebalance_moves({"a": 9.0, "b": 1.0}, {"a": 0, "b": 0}, 1) == []


def test_rebalance_moves_offloads_the_straggler():
    busy = {"a": 4.0, "b": 3.9, "c": 0.1}
    moves = rebalance_moves(busy, {"a": 0, "b": 0, "c": 1}, 2)
    # the heaviest shard whose move improves the makespan goes first:
    # moving a shrinks it from 7.9 to 4.1
    assert moves == [("a", 1)]


def test_rebalance_moves_never_strips_a_workers_last_shard():
    busy = {"a": 10.0, "b": 1.0}
    assert rebalance_moves(busy, {"a": 0, "b": 1}, 2) == []


def test_rebalance_moves_respects_min_gain():
    busy = {"a": 2.0, "b": 1.9, "c": 1.8}
    assignment = {"a": 0, "b": 0, "c": 1}
    assert rebalance_moves(busy, assignment, 2, min_gain=0.9) == []
    assert rebalance_moves(busy, assignment, 2, min_gain=0.05) \
        == [("b", 1)]


def test_rebalance_moves_is_deterministic():
    busy = {f"s{i}": float(i % 5) + 0.25 for i in range(12)}
    assignment = {f"s{i}": i % 3 for i in range(12)}
    first = rebalance_moves(busy, assignment, 3, max_moves=3)
    second = rebalance_moves(dict(reversed(busy.items())),
                             dict(reversed(assignment.items())), 3,
                             max_moves=3)
    assert first == second
    assert len(first) >= 1


# ----------------------------------------------------------------------
# fleet: migrating a site mid-run is invisible in the results
# ----------------------------------------------------------------------

FLEET_KW = dict(pairs=2, routes=20, border_routes=10, seed=3,
                churn_ticks=2, churn_interval=2.0, tracing=True)
FLEET_DURATION = 22.0

#: min_gain=0.9 disarms the measured-busy policy so the only moves are
#: the forced ones — the run stays reproducible wall-clock noise or not
FORCED = RebalanceConfig(every=4, min_gain=0.9,
                         force_moves={4: [("site0", 1)]})


@functools.lru_cache(maxsize=None)
def fleet_static():
    specs = fleet_site_specs(2, **FLEET_KW)
    return ParallelRunner(specs, workers=1).run(FLEET_DURATION)


@functools.lru_cache(maxsize=None)
def fleet_migrated():
    specs = fleet_site_specs(2, **FLEET_KW)
    return ParallelRunner(specs, workers=2, rebalance=FORCED).run(
        FLEET_DURATION
    )


def test_forced_migration_actually_happened():
    result = fleet_migrated()
    assert (4, "site0", 0, 1) in result.migrations


def test_migrated_fleet_results_bit_identical_to_static_run():
    static, migrated = fleet_static(), fleet_migrated()
    assert static.shard_results == migrated.shard_results
    assert static.window_edges == migrated.window_edges
    assert static.executed == migrated.executed


def test_migrated_fleet_loc_ribs_and_phases_converged():
    migrated = fleet_migrated()
    for site_result in migrated.shard_results.values():
        assert site_result["border_established"] >= 1
        assert site_result["rib"]
        assert all(site_result["rib"].values())
        assert site_result["phase_summary"]
    assert migrated.timing["rebalance_s"] > 0.0


def test_migration_works_on_both_transports():
    specs = fleet_site_specs(2, **FLEET_KW)
    pipe = ParallelRunner(specs, workers=2, transport="pipe",
                          rebalance=FORCED).run(FLEET_DURATION)
    assert pipe.shard_results == fleet_static().shard_results
    assert (4, "site0", 0, 1) in pipe.migrations


# ----------------------------------------------------------------------
# chaos corpus: closed shards migrate too (horizon_cap makes barriers)
# ----------------------------------------------------------------------

CHAOS_SEEDS = (0, 1, 2, 12)


@functools.lru_cache(maxsize=None)
def chaos_migrated():
    specs = chaos_corpus_specs(CHAOS_SEEDS)
    horizon = chaos_corpus_horizon(CHAOS_SEEDS)
    # closed shards have no lookahead bound: without a cap the run is
    # one giant window and rebalancing never gets a barrier to act at
    return ParallelRunner(
        specs, workers=2, horizon_cap=horizon / 8,
        rebalance=RebalanceConfig(every=2, min_gain=0.9,
                                  force_moves={2: [("chaos0", 1)]}),
    ).run(horizon)


def test_chaos_verdicts_survive_migration():
    migrated = chaos_migrated()
    assert ("chaos0" in [m[1] for m in migrated.migrations])
    for seed in CHAOS_SEEDS:
        plain = run_schedule(generate_schedule(seed))
        shard = migrated.shard_results[f"chaos{seed}"]
        assert shard["verdict"] == plain.summary()
        assert shard["verdict"] == "all oracles passed"
        assert shard["executed"] == plain.events_executed
        assert shard["rib"] == plain.system.rib_digest()


def test_horizon_cap_validation():
    from repro.sim.engine import SimulationError

    specs = chaos_corpus_specs((0,))
    with pytest.raises(SimulationError, match="horizon_cap"):
        ParallelRunner(specs, workers=1, horizon_cap=0.0)
    with pytest.raises(SimulationError, match="every"):
        RebalanceConfig(every=0)
