"""End-to-end critical-path assertions for the NSR hot path (DESIGN.md §10).

A traced :class:`TensorSystem` processes real UPDATE traffic; the trace
store must reconstruct, for every update, the causally ordered chain
receive → replicate → ack-release → apply → propagate, and the
delayed-ACK invariant (§3.1.1) must hold span-for-span: no ACK release
begins before its update's replication span closed.
"""

import pytest

from repro.metrics import MetricsCollector
from repro.metrics.show import show_trace
from repro.trace import DEFAULT_BUCKETS, PHASES

from conftest import build_tensor_fixture


@pytest.fixture(scope="module")
def traced():
    system, pair, remotes = build_tensor_fixture(
        seed=7, routes=40, neighbors=2, tracing=True, shared_vrf=True
    )
    return system, pair, remotes


def test_every_update_covers_all_five_phases(traced):
    system, _pair, _remotes = traced
    store = system.trace_store
    ids = store.update_ids(msg="UpdateMessage")
    assert len(ids) == 80  # 40 routes x 2 remotes
    for msg_id in ids:
        names = {span.name for span in store.critical_path(msg_id)}
        missing = [phase for phase in PHASES if phase not in names]
        assert not missing, f"trace {msg_id} missing phases {missing}"


def test_critical_path_is_causally_ordered(traced):
    system, _pair, _remotes = traced
    store = system.trace_store
    for msg_id in store.update_ids(msg="UpdateMessage"):
        chain = store.critical_path(msg_id)
        # Sorted by begin time: each span starts no earlier than its
        # predecessor.
        begins = [span.begin for span in chain]
        assert begins == sorted(begins)
        phases = {s.name: s for s in chain if s.name in PHASES}
        # The §3.1 pipeline: bytes are parsed (receive) before the
        # replication write is issued; the ACK may only be released
        # once that write is durable; re-propagation happens after the
        # Loc-RIB apply.  Apply runs concurrently with replication, so
        # only its *end* is ordered against propagate.
        assert phases["receive"].end <= phases["replicate"].begin
        assert phases["replicate"].end <= phases["ack_release"].begin
        assert phases["propagate"].begin >= phases["apply"].end
        # All spans in the chain either share the update's trace or
        # link back to it explicitly.
        for span in chain:
            assert (
                span.trace_id == msg_id
                or msg_id in span.attrs.get("links", ())
            )


def test_no_ack_released_before_replication_durable(traced):
    system, _pair, _remotes = traced
    store = system.trace_store
    assert store.delayed_ack_violations() == []
    # The oracle has teeth: corrupting one replicate span must trip it.
    victim = store.spans(name="replicate", ended=True)[0]
    original = victim.end
    try:
        victim.end = original + 10.0
        violations = store.delayed_ack_violations()
        assert any("ack_release" in problem for problem in violations)
    finally:
        victim.end = original
    assert store.delayed_ack_violations() == []


def test_held_acks_outlive_their_replication_write(traced):
    system, _pair, _remotes = traced
    store = system.trace_store
    holds = [
        span for span in store.spans(name="nfq.hold", ended=True)
        if "released_by" in span.attrs
    ]
    assert holds, "delayed-ACK path never engaged"
    replicate_end = {
        span.trace_id: span.end
        for span in store.spans(name="replicate", ended=True)
    }
    for span in holds:
        durable_at = replicate_end[span.attrs["released_by"]]
        assert span.end >= durable_at


def test_phase_metrics_export_and_histogram(traced):
    system, _pair, _remotes = traced
    store = system.trace_store
    collector = MetricsCollector(system.engine)
    store.export_phase_metrics(collector)
    for phase in PHASES:
        values = collector.values(f"trace.phase.{phase}")
        assert values, f"no exported samples for {phase}"
        assert all(v >= 0.0 for v in values)
    hist = store.histogram("replicate", buckets=DEFAULT_BUCKETS)
    assert sum(count for _bound, count in hist) == len(
        store.spans(name="replicate", ended=True)
    )


def test_show_trace_renders_summary_and_chain(traced):
    system, _pair, _remotes = traced
    store = system.trace_store
    summary = show_trace(store)
    for phase in PHASES:
        assert phase in summary
    msg_id = store.update_ids(msg="UpdateMessage")[0]
    chain_view = show_trace(store, msg_id=msg_id)
    assert "Critical path" in chain_view
    assert "replicate" in chain_view
    assert show_trace(None).startswith("tracing disabled")
