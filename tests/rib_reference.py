"""Brute-force Loc-RIB reference model for differential testing.

:class:`ReferenceRib` reimplements the Loc-RIB's observable contract
with the dumbest data structures that can possibly work: a flat dict of
candidate maps, a full :func:`best_path` re-scan after *every* mutation
(no incremental shortcuts, no MED-group counters), and linear scans for
every tree query (LPM, covered, covering).  Roughly 40 lines of logic
with no clever state to get wrong — the point is that any divergence
from :class:`repro.bgp.rib.LocRib` under churn indicts the optimized
implementation, not the oracle (DESIGN.md §14).

Deliberately *not* modeled: ``decision_runs`` (the incremental
machinery's efficiency counter) and the ``export_seq`` watermark
protocol — those are performance contracts, pinned by their own unit
tests; this model pins semantics only.
"""

from repro.bgp.decision import best_path
from repro.bgp.prefixes import Prefix


class ReferenceRib:
    """Dict-of-dicts Loc-RIB with full re-selection on every change."""

    def __init__(self):
        self._candidates = {}  # prefix -> {peer_id: Route}

    # -- mutation (mirrors LocRib.offer/retract return contract) ------------

    def offer(self, route):
        old = self.best(route.prefix)
        self._candidates.setdefault(route.prefix, {})[route.peer_id] = route
        return old, self.best(route.prefix)

    def retract(self, prefix, peer_id):
        old = self.best(prefix)
        candidates = self._candidates.get(prefix)
        if candidates is not None:
            candidates.pop(peer_id, None)
            if not candidates:
                del self._candidates[prefix]
        return old, self.best(prefix)

    # -- selection -----------------------------------------------------------

    def best(self, prefix):
        candidates = self._candidates.get(prefix)
        if not candidates:
            return None
        return best_path(list(candidates.values()))

    def prefixes(self):
        return set(self._candidates)

    def candidates(self, prefix):
        return dict(self._candidates.get(prefix, {}))

    def __len__(self):
        return len(self._candidates)

    # -- tree queries, by linear scan ----------------------------------------

    def lookup(self, prefix):
        """Longest-prefix match over selected routes."""
        covers = [p for p in self._candidates if p.contains(prefix)]
        if not covers:
            return None
        return self.best(max(covers, key=lambda p: p.length))

    def covered_best(self, prefix):
        return [
            (stored, self.best(stored))
            for stored in sorted(self._candidates)
            if prefix.contains(stored)
        ]

    def covering_best(self, prefix):
        return [
            (stored, self.best(stored))
            for stored in sorted(self._candidates, key=lambda p: p.length)
            if stored.contains(prefix)
        ]

    # -- snapshot ------------------------------------------------------------

    def export_entries(self):
        entries = []
        for prefix in sorted(self._candidates):
            entries.extend(self.export_prefix_entries(prefix))
        return entries

    def export_prefix_entries(self, prefix):
        candidates = self._candidates.get(prefix)
        if not candidates:
            return []
        return [
            {
                "prefix": str(prefix),
                "peer_id": peer_id,
                "source_kind": route.source_kind,
                "attributes": route.attributes.to_wire(),
            }
            for peer_id, route in sorted(candidates.items(),
                                         key=lambda kv: str(kv[0]))
        ]

    def digest(self):
        """The per-RIB slice of ``TensorSystem.rib_digest``: a canonical
        tuple over every candidate path, attributes in wire form."""
        return tuple(
            (entry["prefix"], str(entry["peer_id"]), entry["source_kind"],
             entry["attributes"])
            for entry in self.export_entries()
        )


def rib_digest_of(loc_rib):
    """The :meth:`ReferenceRib.digest` projection of a real LocRib."""
    return tuple(
        (entry["prefix"], str(entry["peer_id"]), entry["source_kind"],
         entry["attributes"])
        for entry in loc_rib.export_entries()
    )


def probe_points(prefixes, rng, extra=8):
    """Deterministic LPM probe positions for a differential run: every
    stored prefix, its parent, a sibling perturbation, a one-longer
    child, the global edges, and a few random positions."""
    points = {Prefix(0, 0), Prefix(0, 32), Prefix(2**32 - 1, 32)}
    for prefix in prefixes:
        points.add(prefix)
        if prefix.length:
            points.add(Prefix(prefix.value, prefix.length - 1))
            points.add(Prefix(prefix.value ^ (1 << (32 - prefix.length)),
                              prefix.length))
        if prefix.length < 32:
            points.add(Prefix(prefix.value | (1 << (31 - prefix.length)),
                              prefix.length + 1))
    for _ in range(extra):
        points.add(Prefix(rng.randrange(2**32), rng.randrange(33)))
    return sorted(points)
