"""Routing policy: prefix lists, route maps, actions."""

from repro.bgp import PathAttributes, PolicyAction, Prefix, RouteMap, RouteMapEntry
from repro.bgp.attributes import AsPath
from repro.bgp.policy import PERMIT_ALL, PrefixList

P_IN = Prefix.parse("10.1.0.0/16")
P_OUT = Prefix.parse("172.16.0.0/12")
ATTRS = PathAttributes(as_path=AsPath.sequence(65001), next_hop="1.1.1.1",
                       communities=(100,))


def test_prefix_list_matches_covered():
    plist = PrefixList("p", [Prefix.parse("10.0.0.0/8")])
    assert plist.matches(P_IN)
    assert not plist.matches(P_OUT)


def test_prefix_list_exact_mode():
    plist = PrefixList("p", [Prefix.parse("10.0.0.0/8")], match_longer=False)
    assert plist.matches(Prefix.parse("10.0.0.0/8"))
    assert not plist.matches(P_IN)


def test_permit_all_passes_unchanged():
    assert PERMIT_ALL.evaluate(P_IN, ATTRS) is ATTRS


def test_implicit_deny():
    rmap = RouteMap("empty")
    assert rmap.evaluate(P_IN, ATTRS) is None


def test_deny_entry():
    rmap = RouteMap("m", [
        RouteMapEntry(permit=False,
                      match_prefix_list=PrefixList("p", [Prefix.parse("10.0.0.0/8")])),
        RouteMapEntry(permit=True),
    ])
    assert rmap.evaluate(P_IN, ATTRS) is None
    assert rmap.evaluate(P_OUT, ATTRS) == ATTRS


def test_set_local_pref_action():
    rmap = RouteMap("m", [RouteMapEntry(action=PolicyAction(set_local_pref=300))])
    out = rmap.evaluate(P_IN, ATTRS)
    assert out.local_pref == 300
    assert ATTRS.local_pref is None  # original untouched


def test_prepend_action():
    rmap = RouteMap("m", [
        RouteMapEntry(action=PolicyAction(prepend_as=65009, prepend_count=3))
    ])
    out = rmap.evaluate(P_IN, ATTRS)
    assert out.as_path.as_list() == [65009, 65009, 65009, 65001]


def test_add_communities_merges_sorted():
    rmap = RouteMap("m", [
        RouteMapEntry(action=PolicyAction(add_communities=(50, 100)))
    ])
    out = rmap.evaluate(P_IN, ATTRS)
    assert out.communities == (50, 100)


def test_set_med_and_next_hop():
    rmap = RouteMap("m", [
        RouteMapEntry(action=PolicyAction(set_med=5, set_next_hop="9.9.9.9"))
    ])
    out = rmap.evaluate(P_IN, ATTRS)
    assert out.med == 5 and out.next_hop == "9.9.9.9"


def test_match_community():
    rmap = RouteMap("m", [
        RouteMapEntry(match_community=100, action=PolicyAction(set_local_pref=999)),
        RouteMapEntry(permit=True),
    ])
    assert rmap.evaluate(P_IN, ATTRS).local_pref == 999
    other = ATTRS.replace(communities=())
    assert rmap.evaluate(P_IN, other).local_pref is None


def test_match_as_in_path():
    rmap = RouteMap("m", [
        RouteMapEntry(match_as=65001, permit=False),
        RouteMapEntry(permit=True),
    ])
    assert rmap.evaluate(P_IN, ATTRS) is None
    other = ATTRS.replace(as_path=AsPath.sequence(65002))
    assert rmap.evaluate(P_IN, other) is other


def test_first_match_wins_ordering():
    rmap = RouteMap("m", [
        RouteMapEntry(action=PolicyAction(set_local_pref=1)),
        RouteMapEntry(action=PolicyAction(set_local_pref=2)),
    ])
    assert rmap.evaluate(P_IN, ATTRS).local_pref == 1


def test_default_permit_route_map():
    rmap = RouteMap("m", [], default_permit=True)
    assert rmap.evaluate(P_IN, ATTRS) is ATTRS


def test_combined_match_conditions_all_required():
    entry = RouteMapEntry(
        match_prefix_list=PrefixList("p", [Prefix.parse("10.0.0.0/8")]),
        match_community=100,
    )
    assert entry.matches(P_IN, ATTRS)
    assert not entry.matches(P_OUT, ATTRS)
    assert not entry.matches(P_IN, ATTRS.replace(communities=()))
