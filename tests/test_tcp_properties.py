"""Property-based tests: TCP byte-stream integrity under adverse networks.

The core NSR correctness argument rests on TCP delivering exactly the
bytes sent, in order, whatever the network does — these properties pin
that down for the simulated stack.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack, export_tcp_state, import_tcp_state
from repro.tcpsim.repair import resume_connection

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run_transfer(chunks, loss, seed):
    engine = Engine()
    network = Network(engine, DeterministicRandom(seed))
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=100e-6, bandwidth=1e9, loss=loss)
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    received = bytearray()

    def on_accept(conn):
        conn.on_data = lambda _c, data: received.extend(data)

    sb.listen(179, on_accept)

    def on_established(conn):
        for chunk in chunks:
            if chunk:
                conn.send(chunk)

    sa.connect("10.0.0.2", 179, on_established=on_established)
    engine.run(until=300.0)
    return bytes(received)


@given(
    chunks=st.lists(st.binary(min_size=0, max_size=5000), min_size=1, max_size=10),
    loss=st.sampled_from([0.0, 0.01, 0.05, 0.15]),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(**_SETTINGS)
def test_byte_stream_integrity_under_loss(chunks, loss, seed):
    expected = b"".join(chunks)
    assert _run_transfer(chunks, loss, seed) == expected


@given(
    payload_size=st.integers(min_value=1, max_value=30_000),
    crash_after=st.floats(min_value=0.0001, max_value=0.01),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(**_SETTINGS)
def test_stream_integrity_across_migration(payload_size, crash_after, seed):
    """Whatever instant the server is snapshotted and killed, the client's
    bytes all arrive exactly once across old + new server."""
    engine = Engine()
    network = Network(engine, DeterministicRandom(seed))
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=100e-6, bandwidth=1e9)
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    received_old = bytearray()
    server_conn = []

    def on_accept(conn):
        server_conn.append(conn)
        conn.on_data = lambda _c, data: received_old.extend(data)

    sb.listen(179, on_accept)
    payload = bytes(i % 256 for i in range(payload_size))
    client = sa.connect(
        "10.0.0.2", 179, on_established=lambda conn: conn.send(payload)
    )
    engine.run(until=crash_after)
    if not server_conn:
        return  # handshake had not completed; nothing to migrate
    state = export_tcp_state(server_conn[0])
    sb.destroy()
    network.host_by_address("10.0.0.2").fail()
    del network.hosts["10.0.0.2"]
    b2 = network.add_host("b2", "10.0.0.2")
    network.connect(a, b2, latency=100e-6, bandwidth=1e9)
    sb2 = TcpStack(engine, b2)
    received_new = bytearray()
    conn2 = import_tcp_state(
        sb2, state, on_data=lambda _c, data: received_new.extend(data)
    )
    resume_connection(conn2)
    engine.run(until=300.0)
    # the snapshot's receive position splits the stream exactly
    snapshot_pos = state.rcv_nxt - (state.irs + 1)
    assert bytes(received_new) == payload[snapshot_pos:]
    assert client.snd_una == client.iss + 1 + payload_size  # all acked


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=2000), min_size=1, max_size=20),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(**_SETTINGS)
def test_bidirectional_integrity(sizes, seed):
    engine = Engine()
    network = Network(engine, DeterministicRandom(seed))
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=100e-6, bandwidth=1e9, loss=0.02)
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    got_a, got_b = bytearray(), bytearray()

    def on_accept(conn):
        conn.on_data = lambda _c, d: got_b.extend(d)
        for i, size in enumerate(sizes):
            conn.send(bytes([i % 256]) * size)

    sb.listen(179, on_accept)

    def on_established(conn):
        conn.on_data = lambda _c, d: got_a.extend(d)
        for i, size in enumerate(sizes):
            conn.send(bytes([(i + 100) % 256]) * size)

    sa.connect("10.0.0.2", 179, on_established=on_established)
    engine.run(until=300.0)
    expect_b = b"".join(bytes([(i + 100) % 256]) * s for i, s in enumerate(sizes))
    expect_a = b"".join(bytes([i % 256]) * s for i, s in enumerate(sizes))
    assert bytes(got_b) == expect_b
    assert bytes(got_a) == expect_a
