"""Per-message lock manager (the §3.1.2 multi-thread write ordering)."""

import pytest

from repro.kvstore import LockManager


def test_free_lock_granted_synchronously():
    locks = LockManager()
    granted = []
    locks.acquire("conn1", "main", lambda: granted.append("main"))
    assert granted == ["main"]
    assert locks.holder("conn1") == "main"


def test_contended_lock_queues_fifo():
    locks = LockManager()
    order = []
    locks.acquire("c", "t1", lambda: order.append("t1"))
    locks.acquire("c", "t2", lambda: order.append("t2"))
    locks.acquire("c", "t3", lambda: order.append("t3"))
    assert order == ["t1"]
    locks.release("c", "t1")
    assert order == ["t1", "t2"]
    locks.release("c", "t2")
    assert order == ["t1", "t2", "t3"]
    locks.release("c", "t3")
    assert locks.holder("c") is None


def test_different_connections_never_contend():
    locks = LockManager()
    granted = []
    locks.acquire("conn1", "main", lambda: granted.append(1))
    locks.acquire("conn2", "keepalive", lambda: granted.append(2))
    assert granted == [1, 2]
    assert locks.contentions == 0


def test_contention_counter():
    locks = LockManager()
    locks.acquire("c", "a", lambda: None)
    locks.acquire("c", "b", lambda: None)
    assert locks.contentions == 1


def test_release_by_non_holder_raises():
    locks = LockManager()
    locks.acquire("c", "a", lambda: None)
    with pytest.raises(RuntimeError):
        locks.release("c", "b")


def test_release_unheld_raises():
    locks = LockManager()
    with pytest.raises(RuntimeError):
        locks.release("c", "a")


def test_queue_length():
    locks = LockManager()
    locks.acquire("c", "a", lambda: None)
    locks.acquire("c", "b", lambda: None)
    locks.acquire("c", "d", lambda: None)
    assert locks.queue_length("c") == 2
    assert locks.queue_length("other") == 0


def test_held_keys():
    locks = LockManager()
    locks.acquire("x", "a", lambda: None)
    locks.acquire("y", "a", lambda: None)
    assert locks.held_keys() == {"x", "y"}
    locks.release("x", "a")
    assert locks.held_keys() == {"y"}


def test_main_and_keepalive_interleaving_scenario():
    """The paper's race: main + keepalive writes for one connection must
    serialize in request order; across connections they interleave."""
    locks = LockManager()
    log = []

    def writer(conn, thread):
        def write():
            log.append((conn, thread))
            locks.release(conn, thread)
        locks.acquire(conn, thread, write)

    writer("c1", "main-1")
    writer("c1", "ka-1")
    writer("c2", "main-2")
    writer("c1", "main-3")
    per_conn = [t for c, t in log if c == "c1"]
    assert per_conn == ["main-1", "ka-1", "main-3"]
    assert ("c2", "main-2") in log
