"""Declarative configuration: validation and system construction."""

import json

import pytest

from repro.config import ConfigError, build_system, load_json, validate_spec


def good_spec():
    return {
        "seed": 7,
        "machines": [
            {"name": "gw-1", "address": "10.1.0.1"},
            {"name": "gw-2", "address": "10.2.0.1"},
        ],
        "pairs": [
            {
                "name": "pair0",
                "primary": "gw-1",
                "backup": "gw-2",
                "service_addr": "10.10.0.1",
                "local_as": 65001,
                "router_id": "10.10.0.1",
                "neighbors": [
                    {"remote_addr": "192.0.2.1", "remote_as": 64512,
                     "vrf": "v0", "mode": "passive"},
                ],
            }
        ],
        "remotes": [
            {"name": "remote0", "address": "192.0.2.1", "asn": 64512,
             "links": ["gw-1", "gw-2"],
             "peer": {"gateway": "10.10.0.1", "gateway_as": 65001, "vrf": "v0"}}
        ],
    }


def test_valid_spec_passes():
    assert validate_spec(good_spec()) is not None


@pytest.mark.parametrize("mutate,path_fragment", [
    (lambda s: s.pop("machines"), "machines"),
    (lambda s: s["machines"].clear(), "machines"),
    (lambda s: s["machines"].append({"name": "gw-1", "address": "x"}), "name"),
    (lambda s: s["pairs"][0].pop("service_addr"), "service_addr"),
    (lambda s: s["pairs"][0].update(primary="nope"), "primary"),
    (lambda s: s["pairs"][0].update(backup="gw-1"), "pairs[0]"),
    (lambda s: s["pairs"][0]["neighbors"].clear(), "neighbors"),
    (lambda s: s["pairs"][0]["neighbors"][0].update(mode="both"), "mode"),
    (lambda s: s["remotes"][0]["links"].append("ghost"), "links"),
    (lambda s: s.update(hook_technology="dpdk"), "hook_technology"),
    (lambda s: s.update(remote_db={"mode": "sync"}), "latency"),
])
def test_invalid_specs_rejected(mutate, path_fragment):
    spec = good_spec()
    mutate(spec)
    with pytest.raises(ConfigError) as excinfo:
        validate_spec(spec)
    assert path_fragment in str(excinfo.value)


def test_duplicate_pair_and_address_rejected():
    spec = good_spec()
    clone = dict(spec["pairs"][0])
    spec["pairs"].append(clone)
    with pytest.raises(ConfigError):
        validate_spec(spec)


def test_build_system_end_to_end():
    system, pairs, remotes = build_system(good_spec())
    system.run(10.0)
    pair = pairs["pair0"]
    remote = remotes["remote0"]
    assert pair.established_session_count() == 1
    session = list(remote.speaker.sessions.values())[0]
    assert session.established
    assert system.machines.keys() == {"gw-1", "gw-2"}


def test_build_system_without_start():
    system, pairs, _remotes = build_system(good_spec(), start=False)
    system.run(5.0)
    assert pairs["pair0"].speaker is None  # never started


def test_build_system_carries_options():
    spec = good_spec()
    spec["hook_technology"] = "ebpf"
    spec["remote_db"] = {"latency": 0.003, "mode": "async"}
    system, _pairs, _remotes = build_system(spec, start=False)
    assert system.hook_technology == "ebpf"
    assert system.remote_db is not None


def test_load_json(tmp_path):
    path = tmp_path / "gateway.json"
    path.write_text(json.dumps(good_spec()))
    system, pairs, remotes = load_json(str(path))
    system.run(10.0)
    assert pairs["pair0"].established_session_count() == 1
