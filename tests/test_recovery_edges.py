"""Recovery edge cases the chaos engine first exposed (DESIGN.md §9).

Three corners of §3.1.2 recovery that hand-picked scenario tests missed:

- a crash landing *during* a snapshot compaction (marker and chunk
  writes possibly unflushed) must still rebuild the exact table — the
  old marker + old deltas, or the new marker + the new floor, are both
  complete descriptions, and recovery must get one of them;
- a crash before any route was ever learned (empty Loc-RIB, no deltas,
  no snapshot) must recover to a live, usable speaker;
- the recovered pipeline must resume the delta log *past* the highest
  stored sequence (the delta_floor contract) — restarting from 0
  overwrote durable records and corrupted the *next* recovery.
"""

from repro.core.recovery import RecoveredState
from repro.failures import FailureInjector
from repro.sim import DeterministicRandom
from repro.workloads.updates import RouteGenerator

from conftest import build_tensor_fixture


def _routes(seed, count, base="10.200.0.0"):
    gen = RouteGenerator(
        DeterministicRandom(seed).fork("edges"), 64512, next_hop="192.0.2.1"
    )
    return gen.routes(count, base=base)


def _gateway_prefixes(pair, vrf_name="v0"):
    return {str(p) for p in pair.speaker.vrfs[vrf_name].loc_rib.prefixes()}


# ----------------------------------------------------------------------
# crash at the snapshot-compaction boundary
# ----------------------------------------------------------------------


def test_crash_mid_compaction_recovers_exact_table():
    system, pair, remotes = build_tensor_fixture(seed=601, routes=0)
    engine = system.engine
    remote, session = remotes[0]
    routes = _routes(601, 250)
    remote.speaker.originate_many("v0", routes)
    remote.speaker.readvertise(session)
    engine.advance(5.0)
    expected = {str(p) for p, _a in routes}
    assert _gateway_prefixes(pair) == expected

    injector = FailureInjector(system)

    def compact_then_crash():
        # Kick the compaction and kill the container before the bulk
        # channel can flush the chunk/marker writes: the database holds
        # a half-written snapshot plus the full delta history.
        pair.pipeline.compact("v0", pair.speaker.vrfs["v0"].loc_rib)
        injector.container_failure(pair)

    engine.schedule(1.0, compact_then_crash)
    engine.advance(25.0)
    assert session.established
    assert _gateway_prefixes(pair) == expected


def test_crash_after_committed_compaction_uses_snapshot():
    system, pair, remotes = build_tensor_fixture(seed=602, routes=0)
    engine = system.engine
    remote, session = remotes[0]
    routes = _routes(602, 200)
    remote.speaker.originate_many("v0", routes)
    remote.speaker.readvertise(session)
    engine.advance(5.0)
    pair.pipeline.compact("v0", pair.speaker.vrfs["v0"].loc_rib)
    engine.advance(2.0)  # let the chunk + marker writes commit
    marker = system.db.store.get("tensor:pair0:rib:v0:marker")
    assert marker is not None and marker["delta_floor"] > 0

    FailureInjector(system).container_failure(pair)
    engine.advance(25.0)
    assert session.established
    assert _gateway_prefixes(pair) == {str(p) for p, _a in routes}
    # the recovered pipeline honors the committed floor: new deltas
    # sequence past it rather than under it
    assert pair.pipeline._delta_floor["v0"] >= marker["delta_floor"]
    assert pair.pipeline._delta_seq["v0"] >= marker["delta_floor"]


# ----------------------------------------------------------------------
# crash with an empty Loc-RIB
# ----------------------------------------------------------------------


def test_crash_with_empty_loc_rib_recovers_live():
    system, pair, remotes = build_tensor_fixture(seed=603, routes=0)
    engine = system.engine
    remote, session = remotes[0]
    FailureInjector(system).container_failure(pair)
    engine.advance(20.0)
    assert session.established
    assert _gateway_prefixes(pair) == set()
    # the recovered speaker is fully usable: routes learned after the
    # migration propagate normally
    routes = _routes(603, 60)
    remote.speaker.originate_many("v0", routes)
    remote.speaker.readvertise(session)
    engine.advance(5.0)
    assert _gateway_prefixes(pair) == {str(p) for p, _a in routes}


# ----------------------------------------------------------------------
# the delta_floor contract
# ----------------------------------------------------------------------


def test_delta_log_state_contract():
    state = RecoveredState("pair0")
    # no marker, no deltas: everything starts at zero
    assert state.delta_log_state("v0") == (0, 0, 0)
    # deltas below the floor are superseded and not live; the next
    # sequence is always past the highest *stored* delta
    state.rib_markers["v0"] = {"chunks": 1, "delta_floor": 4}
    state.rib_deltas["v0"] = [(3, {}), (4, {}), (7, {})]
    assert state.delta_log_state("v0") == (8, 4, 2)
    # marker committed, superseded deltas already purged: resume at the
    # floor itself
    state.rib_deltas["v0"] = []
    assert state.delta_log_state("v0") == (4, 4, 0)


def test_second_recovery_survives_delta_log_resume():
    """The delta-log overwrite regression: after a first migration the
    recovered pipeline used to restart delta sequencing at 0, clobbering
    the durable log, so the *second* recovery rebuilt a corrupt RIB."""
    system, pair, remotes = build_tensor_fixture(seed=604, routes=0)
    engine = system.engine
    remote, session = remotes[0]
    routes = _routes(604, 150)
    remote.speaker.originate_many("v0", routes)
    remote.speaker.readvertise(session)
    engine.advance(5.0)
    expected = {str(p) for p, _a in routes}
    stored_max = max(
        int(key.rsplit(":", 1)[1])
        for key, _value in system.db.store.scan("tensor:pair0:rib:v0:d:")
    )

    injector = FailureInjector(system)
    injector.container_failure(pair)
    engine.advance(20.0)
    assert session.established
    # the contract itself: the new pipeline appends past the stored log
    assert pair.pipeline._delta_seq["v0"] > stored_max

    # more churn through the recovered pipeline, then a second crash
    extra = _routes(604, 50, base="10.210.0.0")
    remote.speaker.originate_many("v0", extra)
    remote.speaker.readvertise(session)
    engine.advance(5.0)
    injector.container_failure(pair)
    engine.advance(20.0)
    assert session.established
    assert _gateway_prefixes(pair) == expected | {str(p) for p, _a in extra}
