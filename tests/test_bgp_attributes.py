"""Path attributes: AS paths, wire roundtrips, policy helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp import AsPath, Origin, PathAttributes
from repro.bgp.attributes import (
    FLAG_OPTIONAL,
    FLAG_TRANSITIVE,
    SEGMENT_SEQUENCE,
    SEGMENT_SET,
    int_to_ipv4,
    ipv4_to_int,
)
from repro.bgp.errors import BgpError


def test_ipv4_helpers_roundtrip():
    assert int_to_ipv4(ipv4_to_int("192.0.2.1")) == "192.0.2.1"
    assert ipv4_to_int("0.0.0.0") == 0
    assert ipv4_to_int("255.255.255.255") == 2**32 - 1


def test_as_path_sequence_and_length():
    path = AsPath.sequence(65001, 65002, 65003)
    assert path.path_length() == 3
    assert path.as_list() == [65001, 65002, 65003]
    assert path.first_as() == 65001


def test_as_set_counts_one_hop():
    path = AsPath([(SEGMENT_SEQUENCE, (1, 2)), (SEGMENT_SET, (3, 4, 5))])
    assert path.path_length() == 3  # 2 + 1


def test_prepend_extends_head_sequence():
    path = AsPath.sequence(65002)
    prepended = path.prepend(65001, count=2)
    assert prepended.as_list() == [65001, 65001, 65002]
    assert path.as_list() == [65002]  # original untouched


def test_prepend_to_empty_path():
    assert AsPath().prepend(65001).as_list() == [65001]


def test_prepend_before_as_set_creates_new_segment():
    path = AsPath([(SEGMENT_SET, (3, 4))])
    prepended = path.prepend(1)
    assert prepended.segments[0] == (SEGMENT_SEQUENCE, (1,))


def test_contains_for_loop_detection():
    path = AsPath.sequence(65001, 65002)
    assert path.contains(65002)
    assert not path.contains(65003)


def test_as_path_wire_roundtrip_4_octet():
    path = AsPath([(SEGMENT_SEQUENCE, (70000, 65001)), (SEGMENT_SET, (2, 3))])
    assert AsPath.from_wire(path.to_wire()) == path


def test_as_path_truncated_wire_raises():
    wire = AsPath.sequence(65001).to_wire()
    with pytest.raises(BgpError):
        AsPath.from_wire(wire[:-1])


def test_attributes_default_values():
    attrs = PathAttributes()
    assert attrs.origin is Origin.IGP
    assert attrs.as_path.path_length() == 0
    assert attrs.local_pref is None


def test_attributes_wire_roundtrip_full():
    attrs = PathAttributes(
        origin=Origin.EGP,
        as_path=AsPath.sequence(70000, 65001),
        next_hop="192.0.2.7",
        med=50,
        local_pref=200,
        atomic_aggregate=True,
        aggregator=(65001, "10.0.0.1"),
        communities=(0x00010002, 0xFFFF0001),
    )
    assert PathAttributes.from_wire(attrs.to_wire()) == attrs


def test_attributes_wire_roundtrip_minimal():
    attrs = PathAttributes(next_hop="1.2.3.4")
    assert PathAttributes.from_wire(attrs.to_wire()) == attrs


def test_unknown_optional_transitive_passthrough():
    attrs = PathAttributes(
        next_hop="1.2.3.4",
        unknown=((FLAG_OPTIONAL | FLAG_TRANSITIVE, 99, b"opaque"),),
    )
    decoded = PathAttributes.from_wire(attrs.to_wire())
    assert decoded.unknown[0][1] == 99
    assert decoded.unknown[0][2] == b"opaque"


def test_unrecognized_wellknown_raises():
    # flags=transitive only (well-known), unknown type 77
    wire = bytes([FLAG_TRANSITIVE, 77, 1, 0])
    with pytest.raises(BgpError):
        PathAttributes.from_wire(wire)


def test_bad_origin_value_raises():
    wire = bytes([FLAG_TRANSITIVE, 1, 1, 9])
    with pytest.raises(BgpError):
        PathAttributes.from_wire(wire)


def test_truncated_attribute_raises():
    attrs = PathAttributes(next_hop="1.2.3.4")
    with pytest.raises(BgpError):
        PathAttributes.from_wire(attrs.to_wire()[:-2])


def test_extended_length_encoding():
    # a very long AS path forces the extended-length flag
    attrs = PathAttributes(as_path=AsPath.sequence(*range(1, 101)))
    assert PathAttributes.from_wire(attrs.to_wire()) == attrs


def test_replace_makes_modified_copy():
    attrs = PathAttributes(local_pref=100)
    changed = attrs.replace(local_pref=300, med=5)
    assert attrs.local_pref == 100
    assert changed.local_pref == 300 and changed.med == 5


def test_key_equality_and_hash():
    a = PathAttributes(next_hop="1.1.1.1", communities=(1, 2))
    b = PathAttributes(next_hop="1.1.1.1", communities=(1, 2))
    c = PathAttributes(next_hop="1.1.1.2", communities=(1, 2))
    assert a == b and hash(a) == hash(b)
    assert a != c


@st.composite
def attributes_strategy(draw):
    asns = draw(st.lists(st.integers(min_value=1, max_value=2**32 - 1),
                         min_size=0, max_size=6))
    return PathAttributes(
        origin=Origin(draw(st.integers(min_value=0, max_value=2))),
        as_path=AsPath.sequence(*asns),
        next_hop=draw(st.one_of(st.none(), st.just("192.0.2.1"), st.just("10.9.8.7"))),
        med=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1))),
        local_pref=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1))),
        atomic_aggregate=draw(st.booleans()),
        aggregator=draw(st.one_of(st.none(), st.just((65001, "10.0.0.1")))),
        communities=tuple(draw(st.lists(
            st.integers(min_value=0, max_value=2**32 - 1), max_size=5))),
    )


@given(attrs=attributes_strategy())
def test_attributes_wire_roundtrip_property(attrs):
    assert PathAttributes.from_wire(attrs.to_wire()) == attrs
