"""The replicated controller panel (DESIGN.md §15).

Pins the quorum/lease/epoch primitives, then the panel end-to-end on a
full system: a lying replica cannot trigger a wrong failover, a crashed
leader's in-flight actions die at the epoch fence, a 3-replica panel
still recovers real machine/database failures, and the three satellite
bugfixes (standby-death detection, stale-pong generations, recovery
deadline) hold under the panel.
"""

import pytest

from conftest import build_tensor_fixture
from repro.control.db_monitor import DbFailoverMonitor
from repro.control.detector import FailureReport
from repro.control.quorum import EpochGate, LeaderLease, QuorumTracker
from repro.failures.injector import FailureInjector
from repro.failures.oracles import OracleSuite
from repro.kvstore import ReplicatedKvCluster
from repro.sim import DeterministicRandom, Network
from repro.sim.calibration import RECOVERY_DEADLINE


# ----------------------------------------------------------------------
# quorum primitives
# ----------------------------------------------------------------------

def test_quorum_fires_exactly_once_at_majority():
    q = QuorumTracker(3)
    key = ("health", "container", "pair0-a")
    assert q.quorum == 2
    assert q.submit(key, 0) is False  # 1/3: below quorum
    assert q.submit(key, 0) is False  # same replica again: no double count
    assert q.votes(key) == frozenset({0})
    assert q.submit(key, 1) is True   # 2/3: fires, once
    assert q.submit(key, 2) is False  # late vote: already acted
    assert q.acted(key)


def test_quorum_reset_target_allows_recurrence():
    q = QuorumTracker(3)
    key = ("health", "container", "pair0-a")
    q.submit(key, 0)
    q.submit(key, 1)
    q.reset_target("pair0-a")
    assert not q.acted(key)
    assert q.votes(key) == frozenset()
    assert q.submit(key, 0) is False  # fresh incident, fresh count
    assert q.submit(key, 2) is True


class _FakeReplica:
    def __init__(self):
        self.alive = True


def test_leader_lease_sticky_until_death():
    replicas = [_FakeReplica() for _ in range(3)]
    lease = LeaderLease(replicas)
    assert lease.ensure() is False  # leader alive: nothing changes
    assert (lease.leader_index, lease.epoch) == (0, 1)
    replicas[0].alive = False
    assert lease.ensure() is True
    assert (lease.leader_index, lease.epoch) == (1, 2)
    replicas[0].alive = True  # reboot does NOT reclaim leadership
    assert lease.ensure() is False
    assert lease.leader_index == 1
    replicas[1].alive = False
    assert lease.ensure() is True
    assert (lease.leader_index, lease.epoch) == (0, 3)


def test_leader_lease_all_dead_keeps_stale_leader():
    replicas = [_FakeReplica() for _ in range(3)]
    lease = LeaderLease(replicas)
    for r in replicas:
        r.alive = False
    assert lease.ensure() is False
    assert (lease.leader_index, lease.epoch) == (0, 1)


def test_epoch_gate_rejects_below_floor():
    gate = EpochGate()
    assert gate.accepts(None)  # legacy unstamped actions always pass
    assert gate.accepts(1)
    gate.announce(3)
    gate.announce(2)  # monotonic: cannot lower the floor
    assert gate.floor == 3
    assert not gate.accepts(2)
    assert gate.accepts(3)
    gate.reject(("fence", "gw-1"), 2)
    assert gate.rejections == [(("fence", "gw-1"), 2, 3)]


# ----------------------------------------------------------------------
# panel end-to-end: byzantine, crash, partition
# ----------------------------------------------------------------------

def test_lying_replica_cannot_trigger_failover():
    system, pair, remotes = build_tensor_fixture(
        seed=210, routes=50, controller_replicas=3
    )
    panel = system.controller
    before_active = pair.active_container.name
    panel.set_corruption(1, "accuse_container")
    system.engine.advance(8.0)
    panel.set_corruption(1, "accuse_machine")
    system.engine.advance(8.0)
    # the liar voted plenty...
    fabricated = [v for v in panel.verdicts if (v.detail or {}).get("fabricated")]
    assert len(fabricated) > 5
    # ...but no fabricated incident ever reached quorum: no accepted
    # failure-report, no migration, no fence
    assert not [e for e in panel.events if e[1] == "failure-report"]
    assert pair.active_container.name == before_active
    assert not system.fencing.fenced_machines()
    assert remotes[0][1].established


def test_crashed_leader_triggers_election_and_epoch_fence():
    system, pair, remotes = build_tensor_fixture(
        seed=211, routes=50, controller_replicas=3
    )
    panel = system.controller
    gate = system.controller_epoch_gate
    assert (panel.lease.leader_index, panel.lease.epoch) == (0, 1)
    panel.crash_replica(0)
    assert (panel.lease.leader_index, panel.lease.epoch) == (1, 2)
    assert gate.floor == 2
    assert [e for e in panel.events if e[1] == "leader-elected"]

    # the deposed leader's in-flight decisions die at every receiver
    assert pair.kill_primary_container(epoch=1) is False
    assert system.fencing.fence("gw-1", epoch=1) is False
    assert not system.fencing.is_fenced("gw-1")
    assert system.db_cluster.promote_replica(controller_epoch=1) is None
    assert system.db_cluster.failovers == 0
    assert len(gate.rejections) == 3

    # current-epoch actions still work: a real container failure is
    # confirmed by the two surviving replicas (2/3 quorum) and recovered
    FailureInjector(system).container_failure(pair)
    system.engine.advance(20.0)
    assert pair.active_container.name == "pair0-b"
    assert remotes[0][1].established
    key = ("health", "container", "pair0-a")
    # the crashed replica never voted on it
    assert 0 not in panel.quorum.votes(key) | {None}


def test_partitioned_replica_alone_cannot_fence_a_healthy_machine():
    system, pair, remotes = build_tensor_fixture(
        seed=212, routes=50, controller_replicas=3
    )
    panel = system.controller
    injector = FailureInjector(system)
    injector.controller_partition(2, "gw-1", duration=12.0)
    system.engine.advance(8.0)
    # replica 2 lost its heartbeats to gw-1 and may well have confirmed
    # "machine unreachable" — but it is a minority of one
    assert not [e for e in panel.events if e[1] == "machine-migration"]
    assert not system.fencing.fenced_machines()
    system.engine.advance(20.0)  # heal + settle: still nothing
    assert not system.fencing.fenced_machines()
    assert remotes[0][1].established


def test_three_replica_panel_recovers_real_machine_failure():
    system, pair, remotes = build_tensor_fixture(
        seed=213, routes=50, controller_replicas=3
    )
    panel = system.controller
    injector = FailureInjector(system)
    injector.host_machine_failure(system.machines["gw-1"])
    system.engine.advance(40.0)
    injector.stamp_records()
    assert system.fencing.is_fenced("gw-1")
    assert pair.active_machine.name == "gw-2"
    records = panel.completed_records()
    assert records and records[0].failure_kind == "machine"
    assert remotes[0][1].established
    # the verdict was genuinely independent: at least a quorum of
    # distinct replicas confirmed it
    voters = {v.replica_id for v in panel.verdicts
              if v.kind == "machine_unreachable" and v.target_name == "gw-1"}
    assert len(voters) >= panel.quorum.quorum


def test_db_failover_needs_quorum_and_promotes_once():
    system, pair, remotes = build_tensor_fixture(
        seed=214, routes=50, controller_replicas=3
    )
    panel = system.controller
    injector = FailureInjector(system)
    injector.database_failover()
    system.engine.advance(15.0)
    assert system.db_cluster.failovers == 1  # exactly one promotion
    events = [e for e in panel.events if e[1] == "database-failover"]
    assert len(events) == 1
    voters = {v.replica_id for v in panel.verdicts
              if v.kind == "db_primary_dead"}
    assert len(voters) >= panel.quorum.quorum
    # every replica's monitor chases the new primary
    for replica in panel.replicas:
        assert replica.db_monitor.client.server_addr == system.db_cluster.primary_addr


# ----------------------------------------------------------------------
# satellite 1: standby-container death is detected and repaired
# ----------------------------------------------------------------------

def test_backup_container_failure_detected_and_standby_refreshed():
    system, pair, remotes = build_tensor_fixture(seed=215, routes=50)
    controller = system.controller
    injector = FailureInjector(system)
    injector.backup_container_failure(pair)
    system.engine.advance(15.0)
    labels = [e[1] for e in controller.events]
    assert "backup-degraded" in labels
    assert "backup-refreshed" in labels
    assert pair.backup_degraded is False
    assert pair.backup_container_name == "pair0-f1"
    assert pair.standby_container.running

    # the regression this guards: a later primary failure must migrate
    # onto the *refreshed* standby, not the corpse
    injector.container_failure(pair)
    system.engine.advance(20.0)
    assert pair.active_container.name == "pair0-f1"
    assert remotes[0][1].established


# ----------------------------------------------------------------------
# satellite 2: stale pongs and stopped monitors
# ----------------------------------------------------------------------

@pytest.fixture
def monitor(engine):
    network = Network(engine, DeterministicRandom(9))
    network.enable_fabric(latency=50e-6)
    controller_host = network.add_host("ctl", "9.9.9.1")
    primary_host = network.add_host("p", "9.9.9.2")
    replica_host = network.add_host("r", "9.9.9.3")
    cluster = ReplicatedKvCluster(engine, primary_host, replica_host)
    return DbFailoverMonitor(engine, controller_host, cluster)


def test_stale_generation_pong_does_not_clear_miss_window(monitor):
    stale_generation = monitor.client.endpoint_generation
    monitor.client.repoint(monitor.cluster.primary_addr,
                           epoch=monitor.cluster.epoch)
    monitor._first_miss = 3.0
    # a straggler reply from before the repoint must not mask the outage
    monitor._on_pong(stale_generation)
    assert monitor._first_miss == 3.0
    monitor._on_pong(monitor.client.endpoint_generation)
    assert monitor._first_miss is None


def test_stale_generation_miss_does_not_count(monitor):
    stale_generation = monitor.client.endpoint_generation
    monitor.client.repoint(monitor.cluster.primary_addr,
                           epoch=monitor.cluster.epoch)
    monitor._on_miss("ping", "timeout", stale_generation)
    assert monitor._first_miss is None


def test_stopped_monitor_ignores_late_callbacks(monitor):
    generation = monitor.client.endpoint_generation
    monitor._first_miss = 3.0
    monitor.stop()
    monitor._on_pong(generation)
    assert monitor._first_miss == 3.0  # untouched: the monitor is dead
    monitor._on_miss("ping", "timeout", generation)
    assert monitor.failovers == 0


# ----------------------------------------------------------------------
# satellite 3: the recovery deadline
# ----------------------------------------------------------------------

def test_stuck_recovery_abandoned_then_redetected():
    system, pair, remotes = build_tensor_fixture(seed=216, routes=50)
    controller = system.controller
    injector = FailureInjector(system)

    # wedge the first migration: activate_backup claims success but its
    # on_done callback never fires (the promotee silently dies mid-boot)
    real_activate = pair.activate_backup

    def wedged(record, on_done, cold=False, epoch=None):
        pair.activate_backup = real_activate  # only the first attempt hangs
        return True

    pair.activate_backup = wedged
    injector.container_failure(pair)
    system.engine.advance(RECOVERY_DEADLINE + 10.0)

    assert controller.abandoned_records
    abandoned = controller.abandoned_records[0]
    assert abandoned.abandoned is True
    assert "recovery abandoned: deadline expired" in abandoned.notes
    labels = [e[1] for e in controller.events]
    assert "recovery-abandoned" in labels
    # the leak this guards: _recovering must not pin the pair forever
    assert pair.name not in controller._recovering
    assert pair.name not in controller._active_recovery

    # detection was re-armed: the still-dead primary is re-reported and
    # the second, healthy migration completes
    system.engine.advance(30.0)
    assert pair.active_container.name == "pair0-b"
    done = [e for e in controller.events if e[1] == "recovery-done"]
    assert done
    assert remotes[0][1].established


# ----------------------------------------------------------------------
# the wrong_failover oracle itself
# ----------------------------------------------------------------------

def test_wrong_failover_trips_on_unjustified_verdict():
    system, pair, remotes = build_tensor_fixture(seed=217, routes=0)
    suite = OracleSuite(system, pair, remotes, stop_on_violation=False)
    suite.arm()
    now = system.engine.now
    system.controller.events.append(
        (now, "failure-report",
         FailureReport("container", "pair0-a", now, now))
    )
    suite._check_wrong_failover(now)
    assert [v for v in suite.violations if v.oracle == "wrong_failover"]


def test_wrong_failover_accepts_justified_verdict():
    system, pair, remotes = build_tensor_fixture(seed=218, routes=0)
    suite = OracleSuite(system, pair, remotes, stop_on_violation=False)
    suite.arm()
    suite.note_injection("container", target_name="gw-1",
                         container_name="pair0-a", pair_name="pair0")
    now = system.engine.now
    system.controller.events.append(
        (now, "failure-report",
         FailureReport("container", "pair0-a", now, now))
    )
    system.controller.events.append(
        (now, "failure-report",
         FailureReport("machine_unreachable", "other-pair-c", now, now))
    )
    suite._check_wrong_failover(now)
    # the justified container verdict passes; the machine verdict on a
    # never-injected target trips
    wrong = [v for v in suite.violations if v.oracle == "wrong_failover"]
    assert len(wrong) == 1
    assert "other-pair-c" in wrong[0].detail
