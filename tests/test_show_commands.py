"""Operator show commands render correct, current state."""

import pytest

from repro.failures import FailureInjector
from repro.forwarding import Fib, FibSyncer
from repro.metrics.show import (
    show_bfd,
    show_bgp_summary,
    show_fib,
    show_migration_history,
    show_nsr_status,
    show_rib,
)

from conftest import build_tensor_fixture


@pytest.fixture(scope="module")
def fixture():
    return build_tensor_fixture(seed=600, routes=50)


def test_show_bgp_summary(fixture):
    system, pair, remotes = fixture
    text = show_bgp_summary(pair.speaker)
    assert "AS 65001" in text
    assert "192.0.2.1" in text
    assert "Established" in text
    assert "50" in text  # prefixes in


def test_show_rib_truncates(fixture):
    system, pair, remotes = fixture
    text = show_rib(pair.speaker.vrfs["v0"], limit=10)
    assert "50 routes" in text
    assert "more" in text  # truncation marker
    assert "ebgp" in text


def test_show_bfd(fixture):
    system, pair, remotes = fixture
    text = show_bfd(pair.bfd)
    assert "UP" in text
    assert "100ms x3" in text


def test_show_fib(fixture):
    system, pair, remotes = fixture
    fib = Fib("gw")
    FibSyncer(system.engine, fib, lambda: pair.speaker.vrfs["v0"].loc_rib).sync_now()
    fib.lookup("10.0.0.1")
    text = show_fib(fib, limit=5)
    assert "50 entries" in text
    assert "1 lookups" in text
    assert "192.0.2.1" in text  # next hop


def test_show_nsr_status_and_history(fixture):
    system, pair, remotes = fixture
    before = show_nsr_status(system)
    assert "pair0" in before and "gw-1" in before
    assert "fenced machines: none" in before
    FailureInjector(system).container_failure(pair)
    system.engine.advance(30.0)
    after = show_nsr_status(system)
    assert "gw-2" in after
    assert "recoveries completed: 1" in after
    history = show_migration_history(system.controller)
    assert "container" in history
    assert "done" in history
