"""Unit tests for the datagram/RPC layer."""

import pytest

from repro.sim import DeterministicRandom, Engine, Network
from repro.sim.rpc import AsyncRpcServer, DatagramSocket, RpcClient, RpcServer


@pytest.fixture
def net(engine):
    network = Network(engine, DeterministicRandom(5))
    network.enable_fabric(latency=1e-4)
    return network


@pytest.fixture
def hosts(net):
    return net.add_host("a", "1.1.1.1"), net.add_host("b", "1.1.1.2")


def test_datagram_roundtrip(engine, hosts):
    a, b = hosts
    sock_b = DatagramSocket(b, 9000)
    got = []
    sock_b.on_receive = lambda src, sport, payload: got.append((src, payload))
    sock_a = DatagramSocket(a, 9001)
    sock_a.sendto("1.1.1.2", 9000, {"hello": 1})
    engine.run_until_idle()
    assert got == [("1.1.1.1", {"hello": 1})]


def test_datagram_src_override(engine, hosts):
    a, b = hosts
    sock_b = DatagramSocket(b, 9000)
    got = []
    sock_b.on_receive = lambda src, sport, payload: got.append(src)
    DatagramSocket(a, 9001).sendto("1.1.1.2", 9000, "x", src_override="9.9.9.9")
    engine.run_until_idle()
    assert got == ["9.9.9.9"]


def test_closed_socket_rejects_send(engine, hosts):
    a, _b = hosts
    sock = DatagramSocket(a, 9001)
    sock.close()
    with pytest.raises(Exception):
        sock.sendto("1.1.1.2", 9000, "x")


def test_rpc_reply(engine, hosts):
    a, b = hosts
    RpcServer(engine, b, 7000, lambda method, body: {"method": method, "x": body["x"] + 1})
    client = RpcClient(engine, a, "1.1.1.2", 7000)
    got = []
    client.call("inc", {"x": 1}, on_reply=got.append)
    engine.run_until_idle()
    assert got == [{"method": "inc", "x": 2}]
    assert client.replies == 1


def test_rpc_service_time_delays_reply(engine, hosts):
    a, b = hosts
    RpcServer(engine, b, 7000, lambda m, body: {}, service_time=lambda m, b_: 0.05)
    client = RpcClient(engine, a, "1.1.1.2", 7000)
    times = []
    client.call("op", {}, on_reply=lambda rep: times.append(engine.now))
    engine.run_until_idle()
    assert times[0] >= 0.05


def test_rpc_timeout_on_dead_server(engine, hosts):
    a, b = hosts
    RpcServer(engine, b, 7000, lambda m, body: {})
    b.fail()
    client = RpcClient(engine, a, "1.1.1.2", 7000)
    outcomes = []
    client.call(
        "op", {}, on_reply=lambda rep: outcomes.append("reply"),
        on_timeout=lambda: outcomes.append("timeout"), timeout=0.2,
    )
    engine.run_until_idle()
    assert outcomes == ["timeout"]
    assert client.timeouts == 1


def test_rpc_late_reply_after_timeout_dropped(engine, hosts):
    a, b = hosts
    RpcServer(engine, b, 7000, lambda m, body: {}, service_time=lambda m, b_: 1.0)
    client = RpcClient(engine, a, "1.1.1.2", 7000)
    outcomes = []
    client.call(
        "op", {}, on_reply=lambda rep: outcomes.append("reply"),
        on_timeout=lambda: outcomes.append("timeout"), timeout=0.2,
    )
    engine.run_until_idle()
    assert outcomes == ["timeout"]  # the 1 s reply arrives but is dropped


def test_rpc_concurrent_requests_matched_by_id(engine, hosts):
    a, b = hosts
    RpcServer(engine, b, 7000, lambda m, body: {"id": body["id"]})
    client = RpcClient(engine, a, "1.1.1.2", 7000)
    got = []
    for i in range(5):
        client.call("op", {"id": i}, on_reply=lambda rep: got.append(rep["id"]))
    engine.run_until_idle()
    assert sorted(got) == [0, 1, 2, 3, 4]


def test_rpc_cancel_all(engine, hosts):
    a, b = hosts
    RpcServer(engine, b, 7000, lambda m, body: {}, service_time=lambda m, b_: 0.5)
    client = RpcClient(engine, a, "1.1.1.2", 7000)
    outcomes = []
    client.call("op", {}, on_reply=lambda rep: outcomes.append("reply"),
                on_timeout=lambda: outcomes.append("timeout"))
    client.cancel_all()
    engine.run_until_idle()
    assert outcomes == []


def test_async_rpc_server_deferred_reply(engine, hosts):
    a, b = hosts

    def handler(method, body, respond):
        engine.schedule(0.3, respond, {"deferred": True})

    AsyncRpcServer(engine, b, 7000, handler)
    client = RpcClient(engine, a, "1.1.1.2", 7000)
    times = []
    client.call("op", {}, on_reply=lambda rep: times.append((engine.now, rep)))
    engine.run_until_idle()
    assert times and times[0][0] >= 0.3
    assert times[0][1]["deferred"] is True


def test_rpc_across_partition_times_out(engine, net):
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    RpcServer(engine, b, 7000, lambda m, body: {})
    b.fail_network()
    client = RpcClient(engine, a, "1.1.1.2", 7000)
    outcomes = []
    client.call("op", {}, on_reply=lambda r: outcomes.append("reply"),
                on_timeout=lambda: outcomes.append("timeout"), timeout=0.2)
    engine.run_until_idle()
    assert outcomes == ["timeout"]
