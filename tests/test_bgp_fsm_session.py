"""BGP FSM transitions and live session behaviour over simulated TCP."""

import pytest

from repro.bgp import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.bgp.fsm import FsmViolation, SessionState, transition
from repro.bgp.messages import NotificationMessage
from repro.bgp.errors import NotificationCode
from repro.tcpsim import TcpStack
from repro.sim.rand import DeterministicRandom


# -- pure FSM -----------------------------------------------------------------


def test_legal_transition_chain():
    state = SessionState.IDLE
    for target in (SessionState.CONNECT, SessionState.OPEN_SENT,
                   SessionState.OPEN_CONFIRM, SessionState.ESTABLISHED,
                   SessionState.IDLE):
        state = transition(state, target)
    assert state is SessionState.IDLE


def test_self_transition_allowed():
    assert transition(SessionState.CONNECT, SessionState.CONNECT) is SessionState.CONNECT


def test_illegal_transition_raises():
    with pytest.raises(FsmViolation):
        transition(SessionState.IDLE, SessionState.ESTABLISHED)
    with pytest.raises(FsmViolation):
        transition(SessionState.OPEN_SENT, SessionState.ESTABLISHED)


# -- live sessions ------------------------------------------------------------


def _speaker_pair(engine, two_hosts, hold_time=90, keepalive=30,
                  gr_a=None, gr_b=None):
    a, b = two_hosts
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    spk_a = BgpSpeaker(engine, sa, SpeakerConfig(
        "a", 65001, "10.0.0.1", graceful_restart_time=gr_a))
    spk_b = BgpSpeaker(engine, sb, SpeakerConfig(
        "b", 65002, "10.0.0.2", graceful_restart_time=gr_b))
    sess_a = spk_a.add_peer(PeerConfig("10.0.0.2", 65002, mode="active",
                                       hold_time=hold_time,
                                       keepalive_interval=keepalive,
                                       graceful_restart_time=gr_a))
    sess_b = spk_b.add_peer(PeerConfig("10.0.0.1", 65001, mode="passive",
                                       hold_time=hold_time,
                                       keepalive_interval=keepalive,
                                       graceful_restart_time=gr_b))
    spk_a.start()
    spk_b.start()
    return spk_a, spk_b, sess_a, sess_b


def test_session_establishes(engine, two_hosts):
    spk_a, spk_b, sess_a, sess_b = _speaker_pair(engine, two_hosts)
    engine.advance(2.0)
    assert sess_a.established and sess_b.established
    assert sess_a.established_at is not None


def test_hold_time_negotiated_to_minimum(engine, two_hosts):
    a, b = two_hosts
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    spk_a = BgpSpeaker(engine, sa, SpeakerConfig("a", 65001, "10.0.0.1"))
    spk_b = BgpSpeaker(engine, sb, SpeakerConfig("b", 65002, "10.0.0.2"))
    sess_a = spk_a.add_peer(PeerConfig("10.0.0.2", 65002, mode="active", hold_time=30))
    sess_b = spk_b.add_peer(PeerConfig("10.0.0.1", 65001, mode="passive", hold_time=90))
    spk_a.start(); spk_b.start()
    engine.advance(2.0)
    assert sess_a.negotiated_hold_time == 30
    assert sess_b.negotiated_hold_time == 30


def test_wrong_asn_rejected_with_notification(engine, two_hosts):
    a, b = two_hosts
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    spk_a = BgpSpeaker(engine, sa, SpeakerConfig("a", 65001, "10.0.0.1"))
    spk_b = BgpSpeaker(engine, sb, SpeakerConfig("b", 65002, "10.0.0.2"))
    # a expects 64999 but the peer is 65002
    sess_a = spk_a.add_peer(PeerConfig("10.0.0.2", 64999, mode="active"))
    spk_b.add_peer(PeerConfig("10.0.0.1", 65001, mode="passive"))
    spk_a.start(); spk_b.start()
    engine.advance(3.0)
    assert not sess_a.established


def test_keepalives_maintain_session(engine, two_hosts):
    spk_a, spk_b, sess_a, sess_b = _speaker_pair(
        engine, two_hosts, hold_time=3, keepalive=1)
    engine.advance(30.0)
    assert sess_a.established and sess_b.established
    assert sess_a.messages_sent > 8  # OPEN + many KEEPALIVEs


def test_hold_timer_expiry_drops_session(engine, two_hosts):
    spk_a, spk_b, sess_a, sess_b = _speaker_pair(
        engine, two_hosts, hold_time=3, keepalive=1)
    engine.advance(2.0)
    assert sess_a.established
    # silence b: its keepalives stop but TCP stays up
    sess_b.keepalive_timer.stop()
    spk_b.running = False
    engine.advance(10.0)
    assert not sess_a.established
    assert sess_a.session_drops == 1


def test_notification_drops_session(engine, two_hosts):
    spk_a, spk_b, sess_a, sess_b = _speaker_pair(engine, two_hosts)
    engine.advance(2.0)
    sess_b.send_message(NotificationMessage(NotificationCode.CEASE, 4))
    engine.advance(1.0)
    assert not sess_a.established


def test_session_drop_withdraws_routes_at_peer(engine, two_hosts):
    from repro.workloads.updates import RouteGenerator

    spk_a, spk_b, sess_a, sess_b = _speaker_pair(engine, two_hosts)
    engine.advance(2.0)
    gen = RouteGenerator(DeterministicRandom(4), 65002, next_hop="10.0.0.2")
    spk_b.originate_many("default", gen.routes(50))
    spk_b.readvertise(sess_b)
    engine.advance(2.0)
    assert len(spk_a.vrfs["default"].loc_rib) == 50
    spk_b.crash()
    sb_stack = spk_b.stack
    sb_stack.destroy()
    engine.advance(200.0)  # hold timer expires at a
    assert not sess_a.established
    assert len(spk_a.vrfs["default"].loc_rib) == 0


def test_active_side_reconnects_after_drop(engine, two_hosts):
    spk_a, spk_b, sess_a, sess_b = _speaker_pair(
        engine, two_hosts, hold_time=3, keepalive=1)
    engine.advance(2.0)
    sess_b.stop(notify_peer=True)  # admin shutdown on b
    engine.advance(1.0)
    assert not sess_a.established
    # b comes back (re-add passive session), a's retry reconnects
    spk_b.running = True
    spk_b.add_peer(PeerConfig("10.0.0.1", 65001, mode="passive",
                              hold_time=3, keepalive_interval=1))
    engine.advance(20.0)
    assert sess_a.established


def test_graceful_restart_holds_routes(engine, two_hosts):
    from repro.workloads.updates import RouteGenerator

    spk_a, spk_b, sess_a, sess_b = _speaker_pair(
        engine, two_hosts, hold_time=3, keepalive=1, gr_a=30, gr_b=30)
    engine.advance(2.0)
    gen = RouteGenerator(DeterministicRandom(4), 65002, next_hop="10.0.0.2")
    spk_b.originate_many("default", gen.routes(20))
    spk_b.readvertise(sess_b)
    engine.advance(2.0)
    assert len(spk_a.vrfs["default"].loc_rib) == 20
    spk_b.crash()
    spk_b.stack.destroy()
    engine.advance(8.0)  # hold expired, session down, GR timer running
    assert not sess_a.established
    assert len(spk_a.vrfs["default"].loc_rib) == 20  # routes held stale
    engine.advance(40.0)  # GR expires
    assert len(spk_a.vrfs["default"].loc_rib) == 0


def test_inferred_ack_number_matches_tcp(engine, two_hosts):
    """§3.1.2: initial SEQ + cumulative message bytes == TCP ACK number."""
    spk_a, spk_b, sess_a, sess_b = _speaker_pair(engine, two_hosts)
    engine.advance(2.0)
    conn = sess_a.conn
    assert sess_a.inferred_ack_number == conn.rcv_nxt
    # push more messages through and re-check
    engine.advance(40.0)  # keepalives flow
    assert sess_a.inferred_ack_number == conn.rcv_nxt
