"""FIB, RIB->FIB sync, data-plane forwarding, non-stop forwarding."""

import random

import pytest

from repro.bgp import LocRib, PathAttributes, Prefix
from repro.bgp.attributes import AsPath
from repro.bgp.rib import Route
from repro.forwarding import DataPlane, Fib, FibSyncer, TrafficFlow
from repro.sim import DeterministicRandom, Engine, Network


def _route(prefix_text, next_hop, peer="p1", lp=None):
    return Route(
        Prefix.parse(prefix_text),
        PathAttributes(as_path=AsPath.sequence(64512), next_hop=next_hop,
                       local_pref=lp),
        peer,
    )


# -- Fib ------------------------------------------------------------------------


def test_fib_longest_prefix_match():
    fib = Fib()
    fib.program(Prefix.parse("10.0.0.0/8"), "1.1.1.1")
    fib.program(Prefix.parse("10.1.0.0/16"), "2.2.2.2")
    assert fib.lookup("10.1.5.5").next_hop == "2.2.2.2"
    assert fib.lookup("10.9.0.1").next_hop == "1.1.1.1"
    assert fib.lookup("192.0.2.1") is None
    assert fib.misses == 1


def test_fib_unprogram():
    fib = Fib()
    p = Prefix.parse("10.0.0.0/8")
    fib.program(p, "1.1.1.1")
    assert p in fib
    fib.unprogram(p)
    assert p not in fib
    assert fib.lookup("10.0.0.1") is None


def test_fib_reprogram_updates_next_hop():
    fib = Fib()
    p = Prefix.parse("10.0.0.0/8")
    fib.program(p, "1.1.1.1")
    fib.program(p, "3.3.3.3")
    assert fib.lookup("10.0.0.1").next_hop == "3.3.3.3"
    assert len(fib) == 1


# -- FibSyncer --------------------------------------------------------------------


def test_syncer_programs_from_loc_rib(engine):
    rib = LocRib()
    rib.offer(_route("10.0.0.0/8", "1.1.1.1"))
    rib.offer(_route("192.0.2.0/24", "2.2.2.2"))
    fib = Fib()
    syncer = FibSyncer(engine, fib, lambda: rib)
    changes = syncer.sync_now()
    assert changes == 2
    assert len(fib) == 2
    assert syncer.sync_now() == 0  # converged: no further changes


def test_syncer_tracks_withdrawals_and_best_changes(engine):
    rib = LocRib()
    rib.offer(_route("10.0.0.0/8", "1.1.1.1", peer="a", lp=100))
    fib = Fib()
    syncer = FibSyncer(engine, fib, lambda: rib)
    syncer.sync_now()
    rib.offer(_route("10.0.0.0/8", "9.9.9.9", peer="b", lp=200))  # better path
    syncer.sync_now()
    assert fib.lookup("10.0.0.1").next_hop == "9.9.9.9"
    rib.retract(Prefix.parse("10.0.0.0/8"), "b")
    rib.retract(Prefix.parse("10.0.0.0/8"), "a")
    syncer.sync_now()
    assert len(fib) == 0


def test_syncer_holds_state_when_control_plane_down(engine):
    rib_holder = [LocRib()]
    rib_holder[0].offer(_route("10.0.0.0/8", "1.1.1.1"))
    fib = Fib()
    syncer = FibSyncer(engine, fib, lambda: rib_holder[0])
    syncer.sync_now()
    rib_holder[0] = None  # control plane dies
    assert syncer.sync_now() == 0
    assert fib.lookup("10.0.0.1").next_hop == "1.1.1.1"  # DSR: keeps forwarding


def test_syncer_periodic(engine):
    rib = LocRib()
    fib = Fib()
    syncer = FibSyncer(engine, fib, lambda: rib, interval=0.1)
    syncer.start()
    engine.advance(0.05)
    rib.offer(_route("10.0.0.0/8", "1.1.1.1"))
    engine.advance(0.2)
    assert len(fib) == 1


# -- DataPlane / TrafficFlow -------------------------------------------------------


@pytest.fixture
def plane(engine):
    network = Network(engine, DeterministicRandom(5))
    network.enable_fabric(latency=5e-5)
    network.add_host("nh", "1.1.1.1")
    fib = Fib()
    return engine, network, DataPlane(engine, network, fib)


def test_dataplane_forwards_with_route(plane):
    engine, network, dp = plane
    dp.fib.program(Prefix.parse("10.0.0.0/8"), "1.1.1.1")
    assert dp.forward("10.0.0.5", 1000)
    assert dp.forwarded_packets == 1


def test_dataplane_drops_without_route(plane):
    engine, network, dp = plane
    assert not dp.forward("10.0.0.5", 1000)
    assert dp.dropped_no_route == 1


def test_dataplane_drops_when_next_hop_down(plane):
    engine, network, dp = plane
    dp.fib.program(Prefix.parse("10.0.0.0/8"), "1.1.1.1")
    network.host_by_address("1.1.1.1").fail()
    assert not dp.forward("10.0.0.5", 1000)
    assert dp.dropped_next_hop_down == 1


def test_traffic_flow_accounting(plane):
    engine, network, dp = plane
    dp.fib.program(Prefix.parse("10.0.0.0/8"), "1.1.1.1")
    flow = TrafficFlow(engine, dp, "10.0.0.5", rate_pps=1000, packet_bytes=500)
    flow.start()
    engine.advance(1.0)
    flow.stop()
    assert 900 <= flow.offered_packets <= 1100
    assert flow.lost_packets == 0
    assert flow.delivered_bytes == flow.delivered_packets * 500


def test_traffic_flow_loss_interval_tracking(plane):
    engine, network, dp = plane
    prefix = Prefix.parse("10.0.0.0/8")
    dp.fib.program(prefix, "1.1.1.1")
    flow = TrafficFlow(engine, dp, "10.0.0.5", rate_pps=1000)
    flow.start()
    engine.advance(0.5)
    dp.fib.unprogram(prefix)  # outage begins
    engine.advance(0.25)
    dp.fib.program(prefix, "1.1.1.1", engine.now)  # restored
    engine.advance(0.5)
    flow.stop()
    assert flow.lost_packets > 0
    assert flow.delivered_packets > 0
    assert abs(flow.total_loss_time() - 0.25) < 0.05
    assert len(flow.loss_intervals) == 1


def test_nonstop_forwarding_through_nsr_migration():
    """The headline data-plane claim: traffic toward routes learned from
    the gateway keeps flowing while the gateway's BGP container migrates;
    a baseline crash of the same workload loses downtime x rate."""
    import sys
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    from conftest import build_tensor_fixture
    from repro.failures import FailureInjector

    system, pair, remotes = build_tensor_fixture(seed=300, routes=200)
    engine = system.engine
    remote, _session = remotes[0]
    # the remote AS forwards toward the 200 routes it learned from us...
    # here we model the reverse: OUR data plane forwards toward the 200
    # routes learned FROM the remote, surviving the local BGP migration
    fib = Fib("gw")
    syncer = FibSyncer(
        engine, fib,
        lambda: pair.speaker.vrfs["v0"].loc_rib if pair.speaker.running else None,
    )
    syncer.start()
    engine.advance(1.0)
    assert len(fib) == 200
    dp = DataPlane(engine, system.network, fib)
    flow = TrafficFlow(engine, dp, "10.0.0.1", rate_pps=10_000)
    flow.start()
    engine.advance(1.0)
    FailureInjector(system).container_failure(pair)
    engine.advance(30.0)
    flow.stop()
    assert flow.lost_packets == 0, flow.loss_intervals
    assert flow.delivered_packets > 200_000
