"""MRAI pacing modes (DESIGN.md §13).

The fuzzer mutates ``mrai_mode`` / per-peer ``mrai`` as a config
dimension, so the three modes need direct behavioural pins:

- ``per_speaker`` (default) — one flush timer for the whole process;
  this is the historical behaviour and must stay bit-identical.
- ``per_peer`` — each session flushes on its own timer; a slow peer's
  long MRAI must not delay a fast peer.
- ``per_prefix`` — a prefix re-advertised within the pacing window is
  deferred until the window opens; distinct prefixes are unaffected.
"""

from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.bgp.peer import PeerConfig
from repro.bgp.prefixes import Prefix
from repro.bgp.speaker import BgpSpeaker, SpeakerConfig
from repro.sim import Engine, Network
from repro.tcpsim.stack import TcpStack


def _attrs(asn, next_hop):
    return PathAttributes(
        origin=Origin.IGP, as_path=AsPath.sequence(asn), next_hop=next_hop
    )


def _build_pair_of_speakers(mrai_mode="per_speaker", gateway_mrai=0.05,
                            peer_mrais=(None, None)):
    """A gateway speaker with two eBGP peers, sessions established."""
    engine = Engine()
    network = Network(engine)
    gw_host = network.add_host("gw", "10.0.0.1")
    gw = BgpSpeaker(
        engine, TcpStack(engine, gw_host),
        SpeakerConfig("gw", 65001, "10.0.0.1", mrai=gateway_mrai,
                      mrai_mode=mrai_mode),
    )
    remotes = []
    for index, peer_mrai in enumerate(peer_mrais):
        addr = f"10.0.0.{index + 2}"
        host = network.add_host(f"r{index}", addr)
        remote = BgpSpeaker(
            engine, TcpStack(engine, host),
            SpeakerConfig(f"r{index}", 64512 + index, addr),
        )
        network.connect(gw_host, host, latency=0.001, bandwidth=1e9)
        gw.add_peer(PeerConfig(addr, 64512 + index, vrf_name="v0",
                               mode="passive", mrai=peer_mrai))
        remote.add_vrf("v0")
        remote.add_peer(PeerConfig("10.0.0.1", 65001, vrf_name="v0",
                                   mode="active"))
        remotes.append(remote)
    gw.start()
    for remote in remotes:
        remote.start()
    engine.advance(5.0)
    for remote in remotes:
        assert len(remote.established_sessions()) == 1
    return engine, gw, remotes


def _learned(remote):
    return {str(p) for p in remote.vrfs["v0"].loc_rib.prefixes()}


def test_per_speaker_mode_is_the_default_and_flushes_globally():
    engine, gw, (r0, r1) = _build_pair_of_speakers()
    assert gw.config.mrai_mode == "per_speaker"
    r0.originate("v0", Prefix.parse("10.1.0.0/24"), _attrs(64512, "10.0.0.2"))
    engine.advance(2.0)
    assert "10.1.0.0/24" in _learned(r1)


def test_per_peer_mrai_slow_peer_does_not_delay_fast_peer():
    # r0 originates; gw propagates to r1 (fast, 0.05 s) and would to a
    # third slow peer.  Use asymmetric per-peer MRAI: r1 gets 2.0 s, so
    # routes originated by r1 reach r0 (0.05 s default) quickly while
    # the reverse direction is paced by the 2 s override.
    engine, gw, (r0, r1) = _build_pair_of_speakers(
        mrai_mode="per_peer", peer_mrais=(None, 2.0)
    )
    r0.originate("v0", Prefix.parse("10.1.0.0/24"), _attrs(64512, "10.0.0.2"))
    r1.originate("v0", Prefix.parse("10.2.0.0/24"), _attrs(64513, "10.0.0.3"))
    engine.advance(1.0)
    # r0's route towards r1 rides the 2 s per-peer timer: not yet there
    assert "10.1.0.0/24" not in _learned(r1)
    # r1's route towards r0 rides the default 0.05 s timer: arrived
    assert "10.2.0.0/24" in _learned(r0)
    engine.advance(3.0)
    assert "10.1.0.0/24" in _learned(r1)


def test_per_prefix_mrai_paces_readvertisement_of_same_prefix():
    engine, gw, (r0, r1) = _build_pair_of_speakers(
        mrai_mode="per_prefix", gateway_mrai=0.5
    )
    prefix = Prefix.parse("10.1.0.0/24")
    r0.originate("v0", prefix, _attrs(64512, "10.0.0.2"))
    engine.advance(1.0)
    assert "10.1.0.0/24" in _learned(r1)
    first = r1.sessions[next(iter(r1.sessions))].updates_received

    # flap the same prefix twice quickly: the second change lands inside
    # the pacing window and must be deferred, not dropped
    r0.withdraw_originated("v0", prefix)
    r0.originate("v0", prefix, _attrs(64512, "10.0.0.2"))
    engine.advance(0.1)
    r0.withdraw_originated("v0", prefix)
    engine.advance(5.0)
    # the final state (withdrawn) must have converged despite pacing
    assert "10.1.0.0/24" not in _learned(r1)
    session = r1.sessions[next(iter(r1.sessions))]
    assert session.updates_received > first


def test_per_prefix_mode_distinct_prefixes_flush_independently():
    engine, gw, (r0, r1) = _build_pair_of_speakers(
        mrai_mode="per_prefix", gateway_mrai=1.0
    )
    r0.originate("v0", Prefix.parse("10.1.0.0/24"), _attrs(64512, "10.0.0.2"))
    engine.advance(2.0)
    assert "10.1.0.0/24" in _learned(r1)
    # a different prefix is not paced by the first one's window
    r0.originate("v0", Prefix.parse("10.3.0.0/24"), _attrs(64512, "10.0.0.2"))
    engine.advance(2.0)
    assert "10.3.0.0/24" in _learned(r1)
