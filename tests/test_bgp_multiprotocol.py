"""Multiprotocol BGP: IPv6 NLRI via MP_REACH/MP_UNREACH (RFC 4760)."""

import pytest

from repro.bgp import PathAttributes, Prefix
from repro.bgp.attributes import AsPath
from repro.bgp.errors import BgpError
from repro.bgp.messages import UpdateMessage, decode_message
from repro.bgp.multiprotocol import (
    MpReach,
    MpUnreach,
    attach_mp_reach,
    decode_mp_reach,
    decode_mp_unreach,
    encode_mp_reach,
    encode_mp_unreach,
    mp_routes_of,
)

V6_NH = Prefix.parse("2001:db8::1/128").value
V6_PREFIXES = [
    Prefix.parse("2001:db8:1::/48"),
    Prefix.parse("2001:db8:2::/48"),
    Prefix.parse("2400:cb00::/32"),
]


def _strip_header(wire):
    return wire[4:] if len(wire) - 3 > 255 else wire[3:]


def test_mp_reach_roundtrip():
    wire = encode_mp_reach(V6_NH, V6_PREFIXES)
    decoded = decode_mp_reach(_strip_header(wire))
    assert decoded == MpReach(2, 1, V6_NH, V6_PREFIXES)


def test_mp_unreach_roundtrip():
    wire = encode_mp_unreach(V6_PREFIXES[:2])
    decoded = decode_mp_unreach(_strip_header(wire))
    assert decoded == MpUnreach(2, 1, V6_PREFIXES[:2])


def test_mp_reach_rejects_v4_prefixes():
    with pytest.raises(ValueError):
        encode_mp_reach(V6_NH, [Prefix.parse("10.0.0.0/8")])


def test_mp_reach_truncated_raises():
    with pytest.raises(BgpError):
        decode_mp_reach(b"\x00\x02\x01")
    with pytest.raises(BgpError):
        decode_mp_unreach(b"\x00")


def test_attach_mp_reach_travels_in_update():
    attrs = PathAttributes(as_path=AsPath.sequence(65001), next_hop="1.2.3.4")
    v6_attrs = attach_mp_reach(attrs, V6_NH, V6_PREFIXES)
    message = UpdateMessage(attributes=v6_attrs, nlri=[Prefix.parse("10.0.0.0/8")])
    decoded = decode_message(message.to_wire())
    reach, unreach = mp_routes_of(decoded.attributes)
    assert unreach is None
    assert reach.next_hop == V6_NH
    assert reach.nlri == tuple(V6_PREFIXES)
    # the v4 parts are untouched
    assert decoded.nlri == (Prefix.parse("10.0.0.0/8"),)
    assert decoded.attributes.as_path.as_list() == [65001]


def test_attach_mp_reach_replaces_existing():
    attrs = PathAttributes(next_hop="1.2.3.4")
    once = attach_mp_reach(attrs, V6_NH, V6_PREFIXES[:1])
    twice = attach_mp_reach(once, V6_NH, V6_PREFIXES[1:])
    reach, _ = mp_routes_of(twice)
    assert reach.nlri == tuple(V6_PREFIXES[1:])
    mp_entries = [e for e in twice.unknown if e[1] == 14]
    assert len(mp_entries) == 1


def test_mp_routes_of_empty():
    attrs = PathAttributes(next_hop="1.2.3.4")
    assert mp_routes_of(attrs) == (None, None)


def test_v6_routes_learnable_over_session(engine, two_hosts):
    """A v6 table carried in MP_REACH applies into a v6-keyed Loc-RIB."""
    from repro.bgp import BgpSpeaker, PeerConfig, SpeakerConfig
    from repro.bgp.rib import Route
    from repro.tcpsim import TcpStack

    a, b = two_hosts
    sa, sb = TcpStack(engine, a), TcpStack(engine, b)
    spk_a = BgpSpeaker(engine, sa, SpeakerConfig("a", 65001, "10.0.0.1"))
    spk_b = BgpSpeaker(engine, sb, SpeakerConfig("b", 64512, "10.0.0.2"))
    spk_a.add_peer(PeerConfig("10.0.0.2", 64512, mode="active"))
    sess_b = spk_b.add_peer(PeerConfig("10.0.0.1", 65001, mode="passive"))
    spk_a.start(); spk_b.start()
    engine.advance(2.0)
    assert sess_b.established
    # b originates v6 prefixes: carried in MP_REACH inside the attributes;
    # NLRI keying works because Prefix is AFI-aware
    attrs = PathAttributes(as_path=AsPath.sequence(64512), next_hop="10.0.0.2")
    v6_attrs = attach_mp_reach(attrs, V6_NH, V6_PREFIXES)
    for prefix in V6_PREFIXES:
        spk_b.vrfs["default"].loc_rib.offer(Route(prefix, v6_attrs, "local:b", "local"))
    spk_b.readvertise(sess_b)
    engine.advance(2.0)
    learned = [r for r in spk_a.vrfs["default"].loc_rib.best_routes()
               if r.prefix.afi == Prefix.AFI_IPV6]
    assert len(learned) == 3
    reach, _ = mp_routes_of(learned[0].attributes)
    # eBGP next-hop-self: the advertising speaker rewrote the MP next hop
    # to its own (v4-mapped) address
    from repro.bgp.attributes import ipv4_to_int
    assert reach is not None
    assert reach.next_hop == (0xFFFF << 32) | ipv4_to_int("10.0.0.2")
