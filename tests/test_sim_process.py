"""Unit tests for simulated processes, timers, and periodic tasks."""

import pytest

from repro.sim import Engine, Process, Timer
from repro.sim.engine import SimulationError


def test_process_after_schedules_work():
    engine = Engine()
    process = Process(engine, "p")
    fired = []
    process.after(1.0, fired.append, "x")
    engine.run_until_idle()
    assert fired == ["x"]


def test_killed_process_cancels_pending_work():
    engine = Engine()
    process = Process(engine, "p")
    fired = []
    process.after(1.0, fired.append, "x")
    process.kill()
    engine.run_until_idle()
    assert fired == []
    assert not process.alive


def test_dead_process_cannot_schedule():
    engine = Engine()
    process = Process(engine, "p")
    process.kill()
    with pytest.raises(SimulationError):
        process.after(1.0, lambda: None)


def test_crash_is_alias_for_kill():
    engine = Engine()
    process = Process(engine, "p")
    process.crash()
    assert not process.alive


def test_revive_allows_scheduling_again():
    engine = Engine()
    process = Process(engine, "p")
    process.kill()
    process.revive()
    fired = []
    process.after(0.5, fired.append, 1)
    engine.run_until_idle()
    assert fired == [1]


def test_kill_mid_run_stops_callbacks():
    engine = Engine()
    process = Process(engine, "p")
    fired = []
    process.after(1.0, lambda: (fired.append("a"), process.kill()))
    process.after(2.0, fired.append, "b")
    engine.run_until_idle()
    assert fired == [("a", None)] or fired[0][0] == "a"
    assert "b" not in fired


def test_every_repeats_until_killed():
    engine = Engine()
    process = Process(engine, "p")
    ticks = []
    process.every(1.0, lambda: ticks.append(engine.now))
    engine.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
    process.kill()
    engine.run(until=10.0)
    assert len(ticks) == 5


def test_periodic_task_stop():
    engine = Engine()
    process = Process(engine, "p")
    ticks = []
    task = process.every(1.0, lambda: ticks.append(1))
    engine.run(until=2.5)
    task.stop()
    engine.run(until=10.0)
    assert len(ticks) == 2


def test_periodic_interval_must_be_positive():
    engine = Engine()
    process = Process(engine, "p")
    with pytest.raises(SimulationError):
        process.every(0.0, lambda: None)


def test_timer_fires_once():
    engine = Engine()
    fired = []
    timer = Timer(engine, lambda: fired.append(engine.now))
    timer.start(2.0)
    engine.run_until_idle()
    assert fired == [2.0]
    assert timer.fired_count == 1
    assert not timer.armed


def test_timer_restart_replaces_deadline():
    engine = Engine()
    fired = []
    timer = Timer(engine, lambda: fired.append(engine.now))
    timer.start(2.0)
    engine.advance(1.0)
    timer.restart(2.0)  # now fires at t=3
    engine.run_until_idle()
    assert fired == [3.0]


def test_timer_stop_prevents_fire():
    engine = Engine()
    fired = []
    timer = Timer(engine, lambda: fired.append(1))
    timer.start(1.0)
    timer.stop()
    engine.run_until_idle()
    assert fired == []


def test_timer_deadline_property():
    engine = Engine()
    timer = Timer(engine, lambda: None)
    assert timer.deadline is None
    timer.start(4.0)
    assert timer.deadline == 4.0
    timer.stop()
    assert timer.deadline is None


def test_timer_rearm_after_fire():
    engine = Engine()
    fired = []
    timer = Timer(engine, lambda: fired.append(engine.now))
    timer.start(1.0)
    engine.run_until_idle()
    timer.start(1.0)
    engine.run_until_idle()
    assert fired == [1.0, 2.0]
    assert timer.fired_count == 2
