"""End-to-end NSR: the Table 1 scenarios on the full system.

Each test builds a complete TENSOR deployment (two gateway machines, a
pair, a remote AS, the controller/agent/database), injects one failure
class, and asserts the paper's headline properties: recovery completes in
seconds, the remote session never drops, and link downtime is zero.
"""

import pytest

from repro.failures import FailureInjector
from repro.workloads.topology import DowntimeObserver

from conftest import build_tensor_fixture


def _observe(system, remotes, expect_routes):
    remote, session = remotes[0]
    observer = DowntimeObserver(
        system.engine, session, remote.speaker.vrfs[session.config.vrf_name],
        expect_routes=expect_routes,
    )
    observer.start()
    return observer


def _settle_and_check(system, injector, observer, remotes, max_total):
    system.engine.advance(40.0)
    injector.stamp_records()
    records = system.controller.completed_records()
    assert records, system.controller.records
    record = records[0]
    assert record.total_time is not None
    assert record.total_time < max_total
    observer.stop()
    _remote, session = remotes[0]
    assert session.established
    assert observer.total_downtime == 0.0, observer.transitions
    return record


def test_application_failure_recovery(request):
    system, pair, remotes = build_tensor_fixture(seed=101, routes=300)
    observer = _observe(system, remotes, 300)
    injector = FailureInjector(system)
    injector.application_failure(pair)
    record = _settle_and_check(system, injector, observer, remotes, max_total=5.0)
    assert record.failure_kind == "application"
    assert record.detection_time < 0.1  # supervisor polls every 10 ms
    # the same container still hosts the active side (in-place restart)
    assert pair.active_container.name == "pair0-a"


def test_container_failure_migrates_to_backup():
    system, pair, remotes = build_tensor_fixture(seed=102, routes=300)
    observer = _observe(system, remotes, 300)
    injector = FailureInjector(system)
    injector.container_failure(pair)
    record = _settle_and_check(system, injector, observer, remotes, max_total=6.0)
    assert record.failure_kind == "container"
    assert pair.active_container.name == "pair0-b"  # swapped to the backup
    assert pair.active_machine.name == "gw-2"


def test_host_machine_failure_fences_and_migrates():
    system, pair, remotes = build_tensor_fixture(seed=103, routes=300)
    observer = _observe(system, remotes, 300)
    injector = FailureInjector(system)
    injector.host_machine_failure(system.machines["gw-1"])
    record = _settle_and_check(system, injector, observer, remotes, max_total=15.0)
    assert record.failure_kind == "machine"
    assert system.fencing.is_fenced("gw-1")
    assert record.detection_time > 3.0  # the 3 s confirmation timer
    assert pair.active_machine.name == "gw-2"


def test_host_network_failure_behaves_like_machine_failure():
    system, pair, remotes = build_tensor_fixture(seed=104, routes=300)
    observer = _observe(system, remotes, 300)
    injector = FailureInjector(system)
    injector.host_network_failure(system.machines["gw-1"])
    record = _settle_and_check(system, injector, observer, remotes, max_total=15.0)
    assert system.fencing.is_fenced("gw-1")
    # the machine itself is still alive — only its NIC died
    assert system.machines["gw-1"].alive


def test_container_network_failure_kills_and_migrates():
    system, pair, remotes = build_tensor_fixture(seed=105, routes=300)
    observer = _observe(system, remotes, 300)
    injector = FailureInjector(system)
    injector.container_network_failure(pair)
    record = _settle_and_check(system, injector, observer, remotes, max_total=6.0)
    assert record.failure_kind == "container_network"
    assert pair.active_machine.name == "gw-2"


def test_transient_jitter_does_not_migrate():
    system, pair, remotes = build_tensor_fixture(seed=106, routes=100)
    observer = _observe(system, remotes, 100)
    injector = FailureInjector(system)
    injector.transient_host_network_failure(system.machines["gw-1"], duration=1.5)
    system.engine.advance(20.0)
    assert not system.controller.completed_records()
    assert not system.fencing.is_fenced("gw-1")
    observer.stop()
    assert observer.total_downtime == 0.0


def test_agent_failure_harmless_in_normal_times():
    system, pair, remotes = build_tensor_fixture(seed=107, routes=100)
    observer = _observe(system, remotes, 100)
    injector = FailureInjector(system)
    injector.agent_failure()
    system.engine.advance(20.0)
    observer.stop()
    _remote, session = remotes[0]
    assert session.established
    assert observer.total_downtime == 0.0


def test_fenced_machine_not_reused_until_manual_reset():
    system, pair, remotes = build_tensor_fixture(seed=108, routes=100)
    injector = FailureInjector(system)
    injector.host_machine_failure(system.machines["gw-1"])
    system.engine.advance(40.0)
    assert pair.active_machine.name == "gw-2"
    # machine comes back online on its own — must stay fenced
    system.machines["gw-1"].recover()
    system.engine.advance(10.0)
    assert system.fencing.is_fenced("gw-1")
    # no standby was provisioned on the fenced machine
    assert pair.standby_container.machine.name == "gw-1"
    assert not pair.standby_container.running
    system.controller.manual_reset_machine("gw-1")
    assert not system.fencing.is_fenced("gw-1")


def test_split_brain_never_two_active_senders():
    """Throughout a migration triggered by a network failure (the primary
    is alive but unreachable), at most one endpoint answers for the
    service address — the underlay binding is exclusive."""
    system, pair, remotes = build_tensor_fixture(seed=109, routes=100)
    injector = FailureInjector(system)
    old_endpoint = pair.service_endpoint
    injector.host_network_failure(system.machines["gw-1"])
    system.engine.advance(40.0)
    new_endpoint = pair.service_endpoint
    assert new_endpoint is not old_endpoint
    assert system.network.host_by_address("10.10.0.1") is new_endpoint
    # the old primary's processes may still run, but its packets can no
    # longer reach anyone (NIC down) and its endpoint lost the address
    assert system.network.host_by_address("10.10.0.1").anchor().name == "gw-2"


def test_recovery_preserves_loc_rib_exactly():
    system, pair, remotes = build_tensor_fixture(seed=110, routes=500)
    before = {
        str(route.prefix): route.attributes.key()
        for route in pair.speaker.vrfs["v0"].loc_rib.best_routes()
    }
    injector = FailureInjector(system)
    injector.container_failure(pair)
    system.engine.advance(40.0)
    after = {
        str(route.prefix): route.attributes.key()
        for route in pair.speaker.vrfs["v0"].loc_rib.best_routes()
    }
    assert before == after


def test_double_failure_primary_then_new_standby():
    """After one migration, a second failure migrates back to the
    re-provisioned standby on the original machine."""
    system, pair, remotes = build_tensor_fixture(seed=111, routes=100)
    injector = FailureInjector(system)
    injector.container_failure(pair)
    system.engine.advance(40.0)
    assert pair.active_machine.name == "gw-2"
    injector.container_failure(pair)
    system.engine.advance(40.0)
    assert pair.active_machine.name == "gw-1"
    _remote, session = remotes[0]
    assert session.established
    assert len(system.controller.completed_records()) == 2
