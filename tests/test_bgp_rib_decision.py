"""RIBs and the decision process, including order-independence properties."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp import AdjRibIn, AsPath, LocRib, Origin, PathAttributes, Prefix
from repro.bgp.decision import best_path
from repro.bgp.rib import Route
from repro.sim.rand import DeterministicRandom

P1 = Prefix.parse("10.0.0.0/8")
P2 = Prefix.parse("192.0.2.0/24")


def _route(peer, prefix=P1, local_pref=None, path=(65001,), origin=Origin.IGP,
           med=None, source_kind="ebgp"):
    return Route(
        prefix,
        PathAttributes(
            origin=origin,
            as_path=AsPath.sequence(*path),
            next_hop="1.1.1.1",
            local_pref=local_pref,
            med=med,
        ),
        peer,
        source_kind,
    )


# -- Adj-RIB-In ---------------------------------------------------------------


def test_adj_rib_in_update_and_withdraw():
    rib = AdjRibIn("peer1")
    route = _route("peer1")
    assert rib.update(route) is None
    assert rib.get(P1) is route
    replacement = _route("peer1", local_pref=50)
    assert rib.update(replacement) is route
    assert rib.withdraw(P1) is replacement
    assert rib.withdraw(P1) is None
    assert len(rib) == 0


def test_adj_rib_in_clear_returns_prefixes():
    rib = AdjRibIn("p")
    rib.update(_route("p", P1))
    rib.update(_route("p", P2))
    assert set(rib.clear()) == {P1, P2}


# -- decision process ---------------------------------------------------------


def test_higher_local_pref_wins():
    low = _route("a", local_pref=100)
    high = _route("b", local_pref=200)
    assert best_path([low, high]) is high


def test_missing_local_pref_defaults_100():
    default = _route("a")
    lower = _route("b", local_pref=50)
    assert best_path([default, lower]) is default


def test_shorter_as_path_wins():
    short = _route("a", path=(65001,))
    long = _route("b", path=(65001, 65002, 65003))
    assert best_path([long, short]) is short


def test_lower_origin_wins():
    igp = _route("a", origin=Origin.IGP)
    incomplete = _route("b", origin=Origin.INCOMPLETE)
    assert best_path([incomplete, igp]) is igp


def test_med_compared_within_same_first_as():
    low_med = _route("a", path=(65001,), med=10)
    high_med = _route("b", path=(65001,), med=50)
    assert best_path([high_med, low_med]) is low_med


def test_med_ignored_across_different_as():
    a = _route("a", path=(65001,), med=50)
    b = _route("b", path=(65002,), med=10)
    # MED skipped; falls to peer tie-break ("a" < "b")
    assert best_path([a, b]) is a


def test_med_cycle_is_order_independent():
    """Regression: pairwise preference cycles once MED is in play.

    a beats b (eBGP over iBGP), b beats c (peer tie-break), c beats a
    (same-AS MED) — a bare linear scan picked a different winner per
    candidate order.  Deterministic-MED selection first settles each
    neighboring-AS group (c evicts a on MED), then compares group
    winners MED-blind: b wins, whatever the order.
    """
    import itertools

    a = _route("a", path=(65001,), med=10, source_kind="ebgp")
    b = _route("b", path=(65002,), med=99, source_kind="ibgp")
    c = _route("c", path=(65001,), med=5, source_kind="ibgp")
    for order in itertools.permutations([a, b, c]):
        assert best_path(list(order)) is b, [r.peer_id for r in order]


def test_loc_rib_incremental_matches_med_semantics():
    """The Loc-RIB's incremental offer/retract paths agree with
    deterministic-MED best_path even when a challenger or a retracted
    route shares a MED group with other candidates."""
    import itertools

    routes = {
        "a": _route("a", path=(65001,), med=10, source_kind="ebgp"),
        "b": _route("b", path=(65002,), med=99, source_kind="ibgp"),
        "c": _route("c", path=(65001,), med=5, source_kind="ibgp"),
    }
    for order in itertools.permutations(routes):
        rib = LocRib()
        for peer in order:
            rib.offer(routes[peer])
        assert rib.best(P1).peer_id == "b", order
        # evicting the MED-group winner restores the eBGP route as a
        # finalist, which then beats b — a non-best retract that must
        # still re-run selection
        rib.retract(P1, "c")
        assert rib.best(P1).peer_id == "a", order


def test_ebgp_beats_ibgp():
    ebgp = _route("z-ebgp", source_kind="ebgp")
    ibgp = _route("a-ibgp", source_kind="ibgp")
    assert best_path([ibgp, ebgp]) is ebgp


def test_deterministic_peer_tiebreak():
    a = _route("peer-a")
    b = _route("peer-b")
    assert best_path([b, a]) is a


def test_empty_candidates_returns_none():
    assert best_path([]) is None


# -- Loc-RIB ------------------------------------------------------------------


def test_loc_rib_offer_and_best():
    rib = LocRib()
    old, new = rib.offer(_route("a", local_pref=100))
    assert old is None and new.peer_id == "a"
    old, new = rib.offer(_route("b", local_pref=200))
    assert old.peer_id == "a" and new.peer_id == "b"
    assert rib.best(P1).peer_id == "b"
    assert len(rib) == 1


def test_loc_rib_retract_falls_back():
    rib = LocRib()
    rib.offer(_route("a", local_pref=100))
    rib.offer(_route("b", local_pref=200))
    old, new = rib.retract(P1, "b")
    assert old.peer_id == "b" and new.peer_id == "a"
    old, new = rib.retract(P1, "a")
    assert new is None
    assert len(rib) == 0


def test_loc_rib_retract_unknown_is_noop():
    rib = LocRib()
    rib.offer(_route("a"))
    old, new = rib.retract(P1, "nobody")
    assert old is new


def test_loc_rib_candidates_view():
    rib = LocRib()
    rib.offer(_route("a"))
    rib.offer(_route("b"))
    assert set(rib.candidates(P1)) == {"a", "b"}


def test_loc_rib_export_import_roundtrip():
    rib = LocRib(local_as=65001, router_id=7)
    rib.offer(_route("a", P1, local_pref=100))
    rib.offer(_route("b", P1, local_pref=200))
    rib.offer(_route("a", P2))
    entries = rib.export_entries()
    rebuilt = LocRib.import_entries(entries, 65001, 7)
    assert len(rebuilt) == len(rib)
    assert rebuilt.best(P1).peer_id == rib.best(P1).peer_id
    assert set(rebuilt.candidates(P1)) == set(rib.candidates(P1))


def test_route_hashable_by_value():
    a = _route("a")
    b = _route("a")
    assert a == b and a is not b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1  # value-equal routes collapse in a set
    assert len({a, b, _route("c")}) == 2


def test_decision_runs_counts_offer_selections():
    rib = LocRib()
    rib.offer(_route("a", local_pref=100))
    assert rib.decision_runs == 0  # first candidate: trivial adoption
    rib.offer(_route("a", local_pref=150))
    assert rib.decision_runs == 0  # lone-candidate replacement: trivial
    rib.offer(_route("b", local_pref=200))
    assert rib.decision_runs == 1  # challenger vs incumbent comparison
    rib.offer(_route("b", local_pref=50))
    assert rib.decision_runs == 2  # best's own peer replaced: full re-scan


def test_decision_runs_counts_retract_selections():
    rib = LocRib()
    rib.offer(_route("a", local_pref=100))
    rib.offer(_route("b", local_pref=200))
    runs = rib.decision_runs
    rib.retract(P1, "nobody")
    assert rib.decision_runs == runs  # no-op retract: nothing to select
    rib.retract(P1, "a")
    assert rib.decision_runs == runs  # non-best retract: best untouched
    rib.retract(P1, "b")
    assert rib.decision_runs == runs  # last candidate gone: no selection
    rib.offer(_route("a", local_pref=100))
    rib.offer(_route("b", local_pref=200))
    runs = rib.decision_runs
    rib.retract(P1, "b")
    assert rib.decision_runs == runs + 1  # best lost: full re-scan


def test_incremental_reselect_matches_full_rescan_10k():
    """Randomized equivalence of the incremental Loc-RIB and a naive
    shadow that re-runs :func:`best_path` from scratch after every
    operation: 10K offers/retracts, byte-identical exports at the end."""

    rng = DeterministicRandom(20230817).stream("ops")
    prefixes = [Prefix(i << 12, 20) for i in range(400)]
    peers = [f"peer{i}" for i in range(8)]
    rib = LocRib()
    shadow = {}  # prefix -> {peer: Route}, mutated in the same order
    for _step in range(10_000):
        prefix = rng.choice(prefixes)
        peer = rng.choice(peers)
        if rng.random() < 0.3:
            rib.retract(prefix, peer)
            table = shadow.get(prefix)
            if table:
                table.pop(peer, None)
                if not table:
                    del shadow[prefix]
        else:
            route = _route(
                peer,
                prefix,
                local_pref=rng.choice((None, 50, 100, 200)),
                path=tuple(rng.sample(range(64500, 64600), rng.randint(1, 4))),
                med=rng.choice((None, 0, 10)),
                source_kind=rng.choice(("ebgp", "ibgp")),
            )
            rib.offer(route)
            shadow.setdefault(prefix, {})[peer] = route
    # Byte-identical export: every candidate path, same order, same wire.
    expected_entries = []
    for prefix in sorted(shadow):
        expected_entries.extend(
            {
                "prefix": str(prefix),
                "peer_id": peer,
                "source_kind": route.source_kind,
                "attributes": route.attributes.to_wire(),
            }
            for peer, route in sorted(shadow[prefix].items(), key=lambda kv: str(kv[0]))
        )
    assert rib.export_entries() == expected_entries
    # And the incrementally-maintained best equals a full re-scan.
    for prefix, table in shadow.items():
        expected = best_path(list(table.values()))
        assert rib.best(prefix).peer_id == expected.peer_id


# -- properties ---------------------------------------------------------------


@st.composite
def route_strategy(draw, peer_pool=("a", "b", "c", "d", "e")):
    return _route(
        draw(st.sampled_from(peer_pool)),
        local_pref=draw(st.one_of(st.none(), st.integers(0, 500))),
        path=tuple(draw(st.lists(st.integers(1, 2**16), min_size=1, max_size=5))),
        origin=Origin(draw(st.integers(0, 2))),
        med=draw(st.one_of(st.none(), st.integers(0, 100))),
        source_kind=draw(st.sampled_from(("ebgp", "ibgp"))),
    )


@given(routes=st.lists(route_strategy(), min_size=1, max_size=8),
       seed=st.randoms())
def test_decision_order_independent(routes, seed):
    """The winner is the same whatever order candidates are considered.

    Candidate sets are per-peer unique in a real Loc-RIB (a dict keyed by
    peer), so duplicate-peer routes are collapsed to the last one first.
    """
    by_peer = {route.peer_id: route for route in routes}
    unique = list(by_peer.values())
    shuffled = list(unique)
    seed.shuffle(shuffled)
    a = best_path(unique)
    b = best_path(shuffled)
    assert (a.peer_id, a.attributes.key()) == (b.peer_id, b.attributes.key())


@given(routes=st.lists(route_strategy(), min_size=1, max_size=8))
def test_loc_rib_matches_direct_selection(routes):
    """Incremental offer() converges to the same best as one-shot selection."""
    rib = LocRib()
    for route in routes:
        rib.offer(route)
    last_by_peer = {}
    for route in routes:
        last_by_peer[route.peer_id] = route
    expected = best_path(list(last_by_peer.values()))
    assert rib.best(P1).peer_id == expected.peer_id
