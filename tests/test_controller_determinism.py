"""Differential pin: a controller panel of one is the old controller.

The panel refactor (DESIGN.md §15) rewires every recovery action through
quorum voting and epoch-fenced leadership.  With one replica the quorum
is one and the leader never changes, so a panel-of-1 run must be
*bit-identical* to the pre-panel controller on the whole chaos corpus:
same controller events at the same virtual instants, same migration
records, same oracle verdicts, same final RIB digest.  Any divergence
means the refactor changed behaviour, not just structure.
"""

import pytest

from repro.failures.chaos import (
    CORPUS_SEEDS,
    DB_FAILOVER_CORPUS_SEEDS,
    TRACED_CORPUS_SEEDS,
    generate_schedule,
    run_schedule,
)

pytestmark = pytest.mark.slow

ALL_SEEDS = CORPUS_SEEDS + TRACED_CORPUS_SEEDS + DB_FAILOVER_CORPUS_SEEDS


def _normalize_events(controller):
    """Event log with payloads flattened to comparable primitives."""
    out = []
    for t, label, payload in controller.events:
        if hasattr(payload, "kind"):  # FailureReport
            payload = (payload.kind, payload.target_name,
                       payload.detected_at, payload.confirmed_at)
        out.append((t, label, repr(payload)))
    return out


def _normalize_records(controller):
    return [
        (r.failure_kind, r.target_name, r.detected_at, r.initiated_at,
         r.rebooted_at, r.recovered_at, r.abandoned, tuple(r.notes))
        for r in controller.records
    ]


def _run(seed, legacy):
    db_failover = seed in DB_FAILOVER_CORPUS_SEEDS
    schedule = generate_schedule(seed, db_failover=db_failover)
    result = run_schedule(schedule, legacy_controller=legacy)
    controller = result.system.controller
    return {
        "events": _normalize_events(controller),
        "records": _normalize_records(controller),
        "violations": [
            (v.time, v.oracle, v.detail) for v in result.suite.violations
        ],
        "verdict": result.suite.summary(),
        "rib": result.system.rib_digest(),
        "now": result.system.engine.now,
    }


@pytest.mark.parametrize("seed", ALL_SEEDS)
def test_panel_of_one_bit_identical_to_legacy_controller(seed):
    legacy = _run(seed, legacy=True)
    panel = _run(seed, legacy=False)
    assert panel["events"] == legacy["events"]
    assert panel["records"] == legacy["records"]
    assert panel["violations"] == legacy["violations"]
    assert panel["verdict"] == legacy["verdict"]
    assert panel["rib"] == legacy["rib"]
    assert panel["now"] == legacy["now"]
