"""RadixTrie property tests (DESIGN.md §14).

The path-compressed trie must agree with the brute-force flat-dict
reference (:class:`repro.bgp.radix.DictPrefixStore`) on every query —
exact get, membership, longest-prefix match, covering chains, covered
walks, and full sorted iteration — over random prefix sets that include
the edge positions: 0.0.0.0/0 (the root carries an entry), /32 host
routes (maximum depth), dense sibling runs (split-heavy), and interleaved
deletes (prune-heavy).

Hypothesis drives the prefix sets when available (``derandomize=True``
keeps runs stable); a ``DeterministicRandom``-seeded fallback covers the
same properties without it.
"""

import pytest

from repro.bgp.prefixes import Prefix
from repro.bgp.radix import DictPrefixStore, RadixTrie
from repro.sim import DeterministicRandom

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the image bakes hypothesis in
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)


def _v4(value, length):
    return Prefix(value, length, Prefix.AFI_IPV4)


if HAVE_HYPOTHESIS:
    # Bias toward clustered values so sibling splits and shared stems
    # actually occur; pure-uniform 32-bit values almost never collide
    # in their leading bits.
    prefix_sets = st.lists(
        st.tuples(
            st.one_of(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.builds(lambda hi, lo: (hi << 24) | lo,
                          st.integers(min_value=0, max_value=3),
                          st.integers(min_value=0, max_value=255)),
            ),
            st.one_of(
                st.integers(min_value=0, max_value=32),
                st.sampled_from([0, 1, 8, 16, 24, 31, 32]),
            ),
        ),
        min_size=0, max_size=60,
    )
    query_seeds = st.integers(min_value=0, max_value=2**16)
else:  # pragma: no cover
    prefix_sets = None
    query_seeds = None


def _build_both(pairs):
    trie, ref = RadixTrie(), DictPrefixStore()
    for value, length in pairs:
        prefix = _v4(value, length)
        trie.insert(prefix, str(prefix))
        ref.insert(prefix, str(prefix))
    return trie, ref


def _query_points(pairs, rng):
    """Query positions: the stored prefixes themselves, their parents
    and single-bit perturbations, plus the global edges."""
    points = [_v4(0, 0), _v4(0, 32), _v4(2**32 - 1, 32)]
    for value, length in pairs[:24]:
        points.append(_v4(value, length))
        if length:
            points.append(_v4(value, length - 1))
            points.append(_v4(value ^ (1 << (32 - length)), length))
        if length < 32:
            points.append(_v4(value, length + 1))
    for _ in range(8):
        points.append(_v4(rng.randrange(2**32), rng.randrange(33)))
    return points


def _assert_equivalent(trie, ref, points):
    assert len(trie) == len(ref)
    assert list(trie.walk()) == list(ref.walk())
    assert list(trie) == list(ref)
    for point in points:
        assert trie.get(point) == ref.get(point)
        assert (point in trie) == (point in ref)
        assert trie.longest_match(point) == ref.longest_match(point)
        assert list(trie.covering(point)) == list(ref.covering(point))
        assert list(trie.covered(point)) == list(ref.covered(point))


def _assert_insert_query_equivalence(pairs, seed):
    rng = DeterministicRandom(seed).stream("radix-query")
    trie, ref = _build_both(pairs)
    _assert_equivalent(trie, ref, _query_points(pairs, rng))


def _assert_delete_equivalence(pairs, seed):
    rng = DeterministicRandom(seed).stream("radix-delete")
    trie, ref = _build_both(pairs)
    unique = list(dict.fromkeys(_v4(v, l) for v, l in pairs))
    rng.shuffle(unique)
    # Interleave removals (including double-removes, which must be
    # no-op False) with re-queries so pruning bugs surface mid-stream.
    for index, prefix in enumerate(unique):
        assert trie.remove(prefix) == ref.remove(prefix)
        assert trie.remove(prefix) == ref.remove(prefix) == False  # noqa: E712
        if index % 5 == 0:
            _assert_equivalent(trie, ref, _query_points(pairs, rng)[:12])
    assert len(trie) == 0
    assert list(trie.walk()) == []


def _assert_reinsert_stability(pairs, seed):
    """Insert, remove half, re-insert: structure converges, values win
    last-writer."""
    rng = DeterministicRandom(seed).stream("radix-reinsert")
    trie, ref = _build_both(pairs)
    unique = list(dict.fromkeys(_v4(v, l) for v, l in pairs))
    doomed = [p for i, p in enumerate(unique) if i % 2]
    for prefix in doomed:
        trie.remove(prefix)
        ref.remove(prefix)
    for prefix in doomed:
        trie.insert(prefix, "again:" + str(prefix))
        ref.insert(prefix, "again:" + str(prefix))
    _assert_equivalent(trie, ref, _query_points(pairs, rng))


@needs_hypothesis
@settings(derandomize=True, max_examples=120, deadline=None)
@given(pairs=prefix_sets, seed=query_seeds)
def test_insert_query_equivalence(pairs, seed):
    _assert_insert_query_equivalence(pairs, seed)


@needs_hypothesis
@settings(derandomize=True, max_examples=60, deadline=None)
@given(pairs=prefix_sets, seed=query_seeds)
def test_delete_equivalence(pairs, seed):
    _assert_delete_equivalence(pairs, seed)


@needs_hypothesis
@settings(derandomize=True, max_examples=40, deadline=None)
@given(pairs=prefix_sets, seed=query_seeds)
def test_reinsert_stability(pairs, seed):
    _assert_reinsert_stability(pairs, seed)


def _random_pairs(seed, count):
    rng = DeterministicRandom(seed).stream("radix-gen")
    pairs = []
    for _ in range(count):
        if rng.random() < 0.5:
            value = (rng.randrange(4) << 24) | rng.randrange(256)
        else:
            value = rng.randrange(2**32)
        pairs.append((value, rng.choice([0, 1, 8, 16, 20, 24, 31, 32])))
    return pairs


@pytest.mark.parametrize("seed", range(12))
def test_equivalence_seeded_fallback(seed):
    pairs = _random_pairs(seed, 40 + seed)
    _assert_insert_query_equivalence(pairs, seed)
    _assert_delete_equivalence(pairs, seed)
    _assert_reinsert_stability(pairs, seed)


def test_default_route_and_host_routes():
    trie, ref = _build_both([(0, 0), (0, 32), (2**32 - 1, 32),
                             (0x0A000000, 8), (0x0A000000, 32)])
    # /0 covers everything; LPM through it must fall back correctly.
    assert trie.longest_match(_v4(0xC0A80101, 32)) == (_v4(0, 0), "0.0.0.0/0")
    assert trie.longest_match(_v4(0x0A000001, 32)) == (
        _v4(0x0A000000, 8), "10.0.0.0/8")
    assert trie.longest_match(_v4(0x0A000000, 32)) == (
        _v4(0x0A000000, 32), "10.0.0.0/32")
    assert [p for p, _ in trie.covered(_v4(0, 0))] == sorted(
        p for p, _ in ref.walk())
    _assert_equivalent(trie, ref, _query_points(
        [(0, 0), (0, 32), (2**32 - 1, 32)],
        DeterministicRandom(7).stream("radix-query")))


def test_afi_separation():
    trie = RadixTrie()
    v4 = Prefix.parse("10.0.0.0/8")
    v6 = Prefix.parse("2001:db8::/32")
    trie.insert(v4, "v4")
    trie.insert(v6, "v6")
    assert trie.longest_match(Prefix.parse("10.1.0.0/16")) == (v4, "v4")
    assert trie.longest_match(Prefix.parse("2001:db8:1::/48")) == (v6, "v6")
    # Walk order: v4 AFI before v6, matching Prefix.__lt__.
    assert [p for p, _ in trie.walk()] == [v4, v6]
    assert trie.longest_match(Prefix.parse("192.0.2.0/24")) is None


def test_bit_at_bounds():
    prefix = Prefix.parse("10.0.0.0/8")
    with pytest.raises(IndexError):
        prefix.bit_at(-1)
    with pytest.raises(IndexError):
        prefix.bit_at(32)
    assert prefix.bit_at(0) == 0
    assert prefix.bit_at(4) == 1  # 10 = 00001010
