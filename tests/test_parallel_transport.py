"""Unit tests for the pluggable barrier transports.

Covers the shared-memory ring (wraparound, full-ring backpressure,
lifecycle), the compact frame codec (roundtrips, interning, migration
epochs), and the runtime-level guarantees: bit-identical results across
transports, inline fallback under tiny rings, and no leaked /dev/shm
segments after clean exits *and* worker crashes.
"""

import glob
import pickle

import pytest

from repro.sim.network import Packet
from repro.sim.parallel import FrameCodec, ParallelRunner, PickleCodec, ShmRing
from repro.sim.parallel.boundary import CrossShardFrame
from repro.sim.parallel.transport import (
    TransportContext,
    WorkerTransport,
    WorkerTransportSpec,
    handle_bytes,
)
from repro.tcpsim.segment import Segment
from test_parallel_runtime import crash_pair_specs, ping_specs


def _shm_entries():
    return set(glob.glob("/dev/shm/rppar-*"))


# ----------------------------------------------------------------------
# ShmRing
# ----------------------------------------------------------------------

def test_ring_roundtrips_within_capacity():
    ring = ShmRing(capacity=256, create=True)
    try:
        first = ring.write(b"a" * 100)
        second = ring.write(b"b" * 100)
        assert ring.read(*first) == b"a" * 100
        assert ring.read(*second) == b"b" * 100
        assert ring.wraps == 0
    finally:
        ring.close()
        ring.unlink()


def test_ring_wraps_across_physical_end():
    ring = ShmRing(capacity=256, create=True)
    try:
        ring.write(b"x" * 200)
        ring.rotate()          # cycle 2: the 200 bytes stay live
        ring.rotate()          # cycle 3: they are dead, space reclaimed
        handle = ring.write(b"y" * 100)  # 200..300 crosses the end
        assert ring.wraps == 1
        assert ring.read(*handle) == b"y" * 100
    finally:
        ring.close()
        ring.unlink()


def test_ring_refuses_overflow_of_two_live_cycles():
    ring = ShmRing(capacity=256, create=True)
    try:
        assert ring.write(b"x" * 150) is not None
        ring.rotate()
        # previous cycle's 150 bytes are still live: only 106 left
        assert ring.free_bytes() == 106
        assert ring.write(b"y" * 150) is None
        assert ring.overflows == 1
        assert ring.write(b"y" * 100) is not None
        ring.rotate()
        ring.rotate()  # both old cycles retired
        assert ring.free_bytes() == 256
    finally:
        ring.close()
        ring.unlink()


def test_ring_attach_sees_creator_bytes_and_unlink_cleans_up():
    import os.path

    ring = ShmRing(capacity=128, create=True)
    handle = ring.write(b"hello rings")
    reader = ShmRing(name=ring.name, capacity=128)
    try:
        assert reader.read(*handle) == b"hello rings"
        assert os.path.exists(f"/dev/shm/{ring.name}")
    finally:
        reader.close()
        ring.close()
        ring.unlink()
    assert not os.path.exists(f"/dev/shm/{ring.name}")


# ----------------------------------------------------------------------
# FrameCodec
# ----------------------------------------------------------------------

def _packet(payload, size=100, src="10.0.0.1", dst="10.0.0.2"):
    return Packet(src, dst, "tcp", 179, 40000, payload, size)


def _frame(seq, packet, arrival=1.0, src_shard="A"):
    return CrossShardFrame("B", arrival, src_shard, seq, packet)


def _assert_packets_equal(left, right):
    assert type(left) is type(right)
    for slot in Packet.__slots__:
        lv, rv = getattr(left, slot), getattr(right, slot)
        if isinstance(lv, Segment):
            for sslot in Segment.__slots__:
                assert getattr(lv, sslot) == getattr(rv, sslot), sslot
        else:
            assert lv == rv, slot


def _assert_roundtrip(frames):
    blob = FrameCodec().encode_batch("B", frames)
    decoded = FrameCodec().decode_batch(blob, "B")
    assert len(decoded) == len(frames)
    for orig, back in zip(frames, decoded):
        assert back.dst_shard == "B"
        assert back.arrival_time == orig.arrival_time
        assert back.src_shard == orig.src_shard
        assert back.seq == orig.seq
        _assert_packets_equal(orig.packet, back.packet)
    return blob


def test_codec_roundtrips_segment_packets():
    frames = [
        _frame(0, _packet(Segment(100, 200, Segment.SYN, 65535,
                                  mss=1460))),
        _frame(1, _packet(Segment(100, 200, Segment.ACK, 65535,
                                  payload=b"\x01" * 64))),
        _frame(2, _packet(Segment(164, 200, Segment.ACK | Segment.FIN,
                                  32768, payload=b""))),
    ]
    _assert_roundtrip(frames)


def test_codec_roundtrips_bytes_none_and_pickle_payloads():
    frames = [
        _frame(0, _packet(b"raw bytes payload")),
        _frame(1, _packet(None)),
        _frame(2, _packet(("tuple", 42))),  # pickle fallback path
    ]
    blob = FrameCodec().encode_batch("B", frames)
    decoded = FrameCodec().decode_batch(blob, "B")
    assert decoded[0].packet.payload == b"raw bytes payload"
    assert decoded[1].packet.payload is None
    assert decoded[2].packet.payload == ("tuple", 42)


class FancyPacket(Packet):
    """Module-level so the whole-packet pickle fallback can find it."""

    __slots__ = ()


def test_codec_handles_non_ipv4_addresses_and_packet_subclasses():
    frames = [
        _frame(0, _packet(b"x", src="fe80::1", dst="host-name")),
        _frame(1, FancyPacket("10.0.0.1", "10.0.0.2", "udp", 7, 7,
                              b"y", 60)),
    ]
    blob = FrameCodec().encode_batch("B", frames)
    decoded = FrameCodec().decode_batch(blob, "B")
    assert decoded[0].packet.src == "fe80::1"
    assert decoded[0].packet.dst == "host-name"
    # subclasses take the whole-packet pickle path but still roundtrip
    assert type(decoded[1].packet) is FancyPacket
    assert decoded[1].packet.payload == b"y"


def test_codec_interning_shrinks_repeated_payloads():
    payload = b"the same BGP UPDATE bytes, repeated verbatim" * 4
    frames = [
        _frame(i, _packet(Segment(1000 + i, 200, Segment.ACK, 65535,
                                  payload=payload)),
               arrival=1.0 + i * 0.001)
        for i in range(12)
    ]
    encoder = FrameCodec()
    blob = encoder.encode_batch("B", frames)
    # an interned blob costs a varint ref after its first appearance
    assert len(blob) < len(payload) * 3
    decoded = FrameCodec().decode_batch(blob, "B")
    assert all(f.packet.payload.payload == payload for f in decoded)


def test_codec_stream_state_carries_across_batches():
    encoder, decoder = FrameCodec(), FrameCodec()
    payload = b"carried-across-batches payload data!"
    first = encoder.encode_batch("B", [
        _frame(0, _packet(Segment(10, 0, Segment.ACK, 65535,
                                  payload=payload)))
    ])
    second = encoder.encode_batch("B", [
        _frame(1, _packet(Segment(10 + len(payload), 0, Segment.ACK,
                                  65535, payload=payload)),
               arrival=1.001)
    ])
    # second batch reuses the interned payload and the predicted seq
    assert len(second) < len(first) - len(payload) // 2
    decoder.decode_batch(first, "B")
    (frame,) = decoder.decode_batch(second, "B")
    assert frame.packet.payload.payload == payload
    assert frame.packet.payload.seq == 10 + len(payload)


def test_codec_decoding_out_of_order_batches_fails_loudly():
    encoder = FrameCodec()
    payload = b"stream state is order-sensitive!"
    batches = [
        encoder.encode_batch("B", [
            _frame(i, _packet(Segment(10, 0, Segment.ACK, 65535,
                                      payload=payload)))
        ])
        for i in range(2)
    ]
    fresh = FrameCodec()
    # batch 1 references stream state established by batch 0
    with pytest.raises(Exception):
        frames = fresh.decode_batch(batches[1], "B")
        assert frames[0].packet.payload.payload == payload


def test_codec_epoch_change_resets_decoder_state():
    encoder, decoder = FrameCodec(), FrameCodec()
    payload = b"payload interned under the old epoch"
    decoder.decode_batch(encoder.encode_batch("B", [
        _frame(0, _packet(Segment(10, 0, Segment.ACK, 65535,
                                  payload=payload)))
    ]), "B")
    # shard A migrates: its new worker encodes from scratch at epoch 1
    migrated = FrameCodec()
    migrated.set_epoch("A", 1)
    (frame,) = decoder.decode_batch(migrated.encode_batch("B", [
        _frame(1, _packet(Segment(10, 0, Segment.ACK, 65535,
                                  payload=payload)))
    ]), "B")
    assert frame.packet.payload.payload == payload


def test_codec_beats_pickle_on_fleet_like_traffic():
    payload = bytes(range(64)) * 2
    frames = [
        _frame(i, _packet(Segment(5000 + i * 128, 9000, Segment.ACK,
                                  131072, payload=payload)),
               arrival=2.0 + i * 1e-4)
        for i in range(32)
    ]
    compact = FrameCodec().encode_batch("B", frames)
    fat = PickleCodec().encode_batch("B", frames)
    assert pickle.loads(fat)  # sanity: the reference is plain pickle
    assert len(fat) / len(compact) > 3.0


# ----------------------------------------------------------------------
# endpoints and context
# ----------------------------------------------------------------------

def test_worker_transport_pipe_stages_raw_bytes():
    transport = WorkerTransport(WorkerTransportSpec("pipe", 0))
    handle = transport.stage(b"blob")
    assert handle == b"blob"
    assert handle_bytes(handle) == 4
    assert transport.fetch(handle) == b"blob"
    transport.close()


def test_transport_context_shm_roundtrip_and_cleanup():
    before = _shm_entries()
    context = TransportContext("shm", worker_count=2, capacity=4096)
    assert context.kind == "shm"
    writer = WorkerTransport(context.worker_spec(0))
    reader = WorkerTransport(context.worker_spec(1))
    try:
        handle = writer.stage(b"cross-worker bytes")
        assert handle[0] == "r"
        assert handle_bytes(handle) == len(b"cross-worker bytes")
        assert reader.fetch(handle) == b"cross-worker bytes"
        assert context.fetch(handle) == b"cross-worker bytes"
    finally:
        writer.close()
        reader.close()
        context.close()
    assert _shm_entries() == before


def test_transport_context_inline_fallback_when_ring_full():
    context = TransportContext("shm", worker_count=1, capacity=64)
    writer = WorkerTransport(context.worker_spec(0))
    try:
        handle = writer.stage(b"z" * 200)  # cannot fit: inline fallback
        assert handle[0] == "i"
        assert writer.inline_fallbacks == 1
        assert writer.fetch(handle) == b"z" * 200
        assert context.fetch(handle) == b"z" * 200
    finally:
        writer.close()
        context.close()


# ----------------------------------------------------------------------
# runtime integration
# ----------------------------------------------------------------------

def test_transports_produce_identical_results():
    local = ParallelRunner(ping_specs(), workers=1).run(1.5)
    shm = ParallelRunner(ping_specs(), workers=2,
                         transport="shm").run(1.5)
    pipe = ParallelRunner(ping_specs(), workers=2,
                          transport="pipe").run(1.5)
    assert local.shard_results == shm.shard_results == pipe.shard_results
    assert local.window_edges == shm.window_edges == pipe.window_edges
    assert pipe.transport["kind"] == "pipe"
    if shm.transport["kind"] == "shm":  # hosts without /dev/shm degrade
        assert shm.transport["bytes"] <= pipe.transport["bytes"]


def test_tiny_ring_overflows_inline_without_changing_results():
    reference = ParallelRunner(ping_specs(), workers=2).run(1.5)
    tiny = ParallelRunner(ping_specs(), workers=2,
                          ring_capacity=16).run(1.5)
    assert tiny.shard_results == reference.shard_results
    if tiny.transport["kind"] == "shm":
        assert tiny.transport["overflow_batches"] > 0


def test_small_ring_wraps_without_changing_results():
    reference = ParallelRunner(ping_specs(), workers=2).run(2.5)
    small = ParallelRunner(ping_specs(), workers=2,
                           ring_capacity=96).run(2.5)
    assert small.shard_results == reference.shard_results
    if small.transport["kind"] == "shm":
        # batches are tens of bytes: a 96-byte ring must eventually
        # wrap (or overflow inline) but results stay bit-identical
        assert (small.transport["ring_wraps"] > 0
                or small.transport["overflow_batches"] > 0)


def test_runner_rejects_unknown_transport():
    from repro.sim.engine import SimulationError

    with pytest.raises(SimulationError, match="unknown transport"):
        ParallelRunner(ping_specs(), workers=2, transport="carrier-pigeon")


def test_clean_run_leaves_no_shm_segments():
    before = _shm_entries()
    ParallelRunner(ping_specs(), workers=2, transport="shm").run(1.0)
    assert _shm_entries() == before


def test_worker_crash_under_shm_raises_and_leaves_no_segments():
    before = _shm_entries()
    with pytest.raises(RuntimeError, match="kaboom mid-window"):
        ParallelRunner(crash_pair_specs(), workers=2,
                       transport="shm").run(2.0)
    assert _shm_entries() == before
