"""Live route propagation: eBGP -> iBGP, withdrawals, policies, refresh."""


import pytest

from repro.bgp import BgpSpeaker, PeerConfig, Prefix, SpeakerConfig
from repro.bgp.messages import RouteRefreshMessage
from repro.bgp.policy import PolicyAction, PrefixList, RouteMap, RouteMapEntry
from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack
from repro.workloads.updates import RouteGenerator
from repro.sim.rand import DeterministicRandom


def _mesh(engine, network, specs):
    """Build speakers {name: (speaker, host)} from {name: (addr, asn)}."""
    network.enable_fabric(latency=5e-5)
    speakers = {}
    for name, (addr, asn) in specs.items():
        host = network.add_host(name, addr)
        speakers[name] = BgpSpeaker(
            engine, TcpStack(engine, host), SpeakerConfig(name, asn, addr)
        )
        speakers[name].add_vrf("v")
    return speakers


def _connect(engine, speakers, active, passive, **kwargs):
    passive_speaker = speakers[passive]
    active_speaker = speakers[active]
    passive_speaker.add_peer(PeerConfig(
        active_speaker.stack.host.address,
        active_speaker.config.local_as, vrf_name="v", mode="passive", **kwargs))
    return active_speaker.add_peer(PeerConfig(
        passive_speaker.stack.host.address,
        passive_speaker.config.local_as, vrf_name="v", mode="active", **kwargs))


def test_ebgp_route_propagates_to_ibgp_peer(engine, network):
    """external AS -> border speaker -> iBGP neighbour."""
    speakers = _mesh(engine, network, {
        "external": ("10.0.0.1", 64512),
        "border": ("10.0.0.2", 65001),
        "internal": ("10.0.0.3", 65001),
    })
    _connect(engine, speakers, "external", "border")
    _connect(engine, speakers, "internal", "border")
    for speaker in speakers.values():
        speaker.start()
    engine.advance(3.0)
    gen = RouteGenerator(DeterministicRandom(1), 64512, next_hop="10.0.0.1")
    prefix, attrs = gen.routes(1)[0]
    speakers["external"].originate("v", prefix, attrs)
    engine.advance(3.0)
    internal_rib = speakers["internal"].vrfs["v"].loc_rib
    route = internal_rib.best(prefix)
    assert route is not None
    assert route.source_kind == "ibgp"
    # the border prepended nothing on iBGP, but external's eBGP hop added 64512
    assert 64512 in route.attributes.as_path.as_list()


def test_ibgp_split_horizon(engine, network):
    """iBGP-learned routes do not re-propagate to other iBGP peers."""
    speakers = _mesh(engine, network, {
        "rr1": ("10.0.0.1", 65001),
        "hub": ("10.0.0.2", 65001),
        "rr2": ("10.0.0.3", 65001),
    })
    _connect(engine, speakers, "rr1", "hub")
    _connect(engine, speakers, "rr2", "hub")
    for speaker in speakers.values():
        speaker.start()
    engine.advance(3.0)
    # the path must not contain AS 65001 or the hub's loop detection
    # (correctly) rejects it, so the internal route carries an external
    # origin AS
    gen = RouteGenerator(DeterministicRandom(2), 64999, next_hop="10.0.0.1")
    prefix, attrs = gen.routes(1)[0]
    speakers["rr1"].originate("v", prefix, attrs)
    engine.advance(3.0)
    assert speakers["hub"].vrfs["v"].loc_rib.best(prefix) is not None
    # split horizon: hub must NOT forward an iBGP route to rr2
    assert speakers["rr2"].vrfs["v"].loc_rib.best(prefix) is None


def test_withdrawal_propagates(engine, network):
    speakers = _mesh(engine, network, {
        "a": ("10.0.0.1", 64512),
        "b": ("10.0.0.2", 65001),
    })
    session = _connect(engine, speakers, "a", "b")
    for speaker in speakers.values():
        speaker.start()
    engine.advance(3.0)
    gen = RouteGenerator(DeterministicRandom(3), 64512, next_hop="10.0.0.1")
    prefix, attrs = gen.routes(1)[0]
    speakers["a"].originate("v", prefix, attrs)
    engine.advance(3.0)
    assert speakers["b"].vrfs["v"].loc_rib.best(prefix) is not None
    speakers["a"].withdraw_originated("v", prefix)
    engine.advance(3.0)
    assert speakers["b"].vrfs["v"].loc_rib.best(prefix) is None


def test_import_policy_filters_on_live_session(engine, network):
    speakers = _mesh(engine, network, {
        "a": ("10.0.0.1", 64512),
        "b": ("10.0.0.2", 65001),
    })
    blocked = PrefixList("blocked", [Prefix.parse("10.66.0.0/16")])
    import_policy = RouteMap("imp", [
        RouteMapEntry(permit=False, match_prefix_list=blocked),
        RouteMapEntry(permit=True),
    ])
    speakers["b"].add_peer(PeerConfig("10.0.0.1", 64512, vrf_name="v",
                                      mode="passive", import_policy=import_policy))
    session = speakers["a"].add_peer(PeerConfig("10.0.0.2", 65001, vrf_name="v",
                                                mode="active"))
    for speaker in speakers.values():
        speaker.start()
    engine.advance(3.0)
    gen = RouteGenerator(DeterministicRandom(4), 64512, next_hop="10.0.0.1")
    allowed = Prefix.parse("10.50.1.0/24")
    denied = Prefix.parse("10.66.1.0/24")
    speakers["a"].originate("v", allowed, gen.attr_pool[0])
    speakers["a"].originate("v", denied, gen.attr_pool[0])
    engine.advance(3.0)
    rib = speakers["b"].vrfs["v"].loc_rib
    assert rib.best(allowed) is not None
    assert rib.best(denied) is None


def test_export_policy_rewrites_on_live_session(engine, network):
    speakers = _mesh(engine, network, {
        "a": ("10.0.0.1", 64512),
        "b": ("10.0.0.2", 65001),
    })
    export_policy = RouteMap("exp", [
        RouteMapEntry(action=PolicyAction(prepend_as=64512, prepend_count=3,
                                          add_communities=(0xDEAD,))),
    ])
    speakers["a"].add_peer(PeerConfig("10.0.0.2", 65001, vrf_name="v",
                                      mode="active", export_policy=export_policy))
    speakers["b"].add_peer(PeerConfig("10.0.0.1", 64512, vrf_name="v",
                                      mode="passive"))
    for speaker in speakers.values():
        speaker.start()
    engine.advance(3.0)
    gen = RouteGenerator(DeterministicRandom(5), 64512, next_hop="10.0.0.1")
    prefix, attrs = gen.routes(1)[0]
    speakers["a"].originate("v", prefix, attrs)
    engine.advance(3.0)
    route = speakers["b"].vrfs["v"].loc_rib.best(prefix)
    assert route is not None
    path = route.attributes.as_path.as_list()
    # 3 policy prepends + the eBGP export prepend
    assert path.count(64512) >= 4
    assert 0xDEAD in route.attributes.communities


def test_route_refresh_readvertises(engine, network):
    speakers = _mesh(engine, network, {
        "a": ("10.0.0.1", 64512),
        "b": ("10.0.0.2", 65001),
    })
    session_a = _connect(engine, speakers, "a", "b")
    for speaker in speakers.values():
        speaker.start()
    engine.advance(3.0)
    gen = RouteGenerator(DeterministicRandom(6), 64512, next_hop="10.0.0.1")
    speakers["a"].originate_many("v", gen.routes(50))
    speakers["a"].readvertise(session_a)
    engine.advance(3.0)
    rib_b = speakers["b"].vrfs["v"].loc_rib
    assert len(rib_b) == 50
    # b wipes its table locally (simulating an operator clear) and asks
    # for a refresh
    session_b = next(iter(speakers["b"].sessions.values()))
    for prefix in list(session_b.adj_rib_in.prefixes()):
        session_b.adj_rib_in.withdraw(prefix)
        rib_b.retract(prefix, session_b.peer_id)
    assert len(rib_b) == 0
    session_b.send_message(RouteRefreshMessage())
    engine.advance(3.0)
    assert len(rib_b) == 50


def test_best_path_switchover_propagates(engine, network):
    """When the best path changes upstream, downstream peers converge."""
    speakers = _mesh(engine, network, {
        "src1": ("10.0.0.1", 64512),
        "src2": ("10.0.0.2", 64513),
        "mid": ("10.0.0.3", 65001),
        "sink": ("10.0.0.4", 64999),
    })
    _connect(engine, speakers, "src1", "mid")
    _connect(engine, speakers, "src2", "mid")
    _connect(engine, speakers, "sink", "mid")
    for speaker in speakers.values():
        speaker.start()
    engine.advance(3.0)
    gen = RouteGenerator(DeterministicRandom(7), 64512, next_hop="10.0.0.1")
    prefix = Prefix.parse("203.0.113.0/24")
    # src1 offers a long path; sink should first see it via src1
    speakers["src1"].originate("v", prefix,
                               gen.attr_pool[0].replace(as_path=gen.attr_pool[0].as_path.prepend(64512, 3)))
    engine.advance(3.0)
    sink_route = speakers["sink"].vrfs["v"].loc_rib.best(prefix)
    assert sink_route is not None
    first_path_len = sink_route.attributes.as_path.path_length()
    # src2 offers a shorter path; mid switches best and re-advertises
    speakers["src2"].originate("v", prefix, gen.attr_pool[1])
    engine.advance(3.0)
    sink_route = speakers["sink"].vrfs["v"].loc_rib.best(prefix)
    assert sink_route.attributes.as_path.path_length() < first_path_len
    assert 64513 in sink_route.attributes.as_path.as_list()
