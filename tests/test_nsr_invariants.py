"""NSR correctness invariants (DESIGN.md §5).

The central claims: (1) no TCP ACK escapes before the message it covers
is replicated; (2) therefore a crash at ANY instant loses no routing
information — the backup reconstructs everything from the database plus
TCP retransmission; (3) without the delayed ACK (the ablation), the
§3.1.1 inconsistency is real and observable.
"""


import pytest

from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.failures import FailureInjector
from repro.workloads.topology import build_remote_peer
from repro.workloads.updates import RouteGenerator

from conftest import build_tensor_fixture
from repro.sim.rand import DeterministicRandom


@pytest.mark.parametrize("crash_delay", [0.005, 0.02, 0.05, 0.12, 0.3, 0.8])
def test_crash_during_transfer_loses_nothing(crash_delay):
    """Kill the container mid-transfer at several instants; the recovered
    gateway must end with every route the remote advertised."""
    system, pair, remotes = build_tensor_fixture(seed=200, routes=0)
    engine = system.engine
    remote, session = remotes[0]
    gen = RouteGenerator(DeterministicRandom(9), 64512, next_hop="192.0.2.1")
    remote.speaker.originate_many("v0", gen.routes(3000))
    remote.speaker.readvertise(session)
    engine.advance(crash_delay)  # crash lands mid-transfer
    injector = FailureInjector(system)
    injector.container_failure(pair)
    engine.advance(60.0)
    assert session.established
    assert len(pair.speaker.vrfs["v0"].loc_rib) == 3000
    assert pair.active_container.name.endswith("-b")


def test_no_ack_released_before_replication():
    """Tap the wire: every pure ACK leaving the gateway's service address
    must be covered by database state at that instant."""
    system, pair, remotes = build_tensor_fixture(seed=201, routes=0)
    engine = system.engine
    remote, session = remotes[0]
    violations = []
    db_store = system.db.store

    def check_ack(packet, delivered):
        if packet.protocol != "tcp" or packet.src != "10.10.0.1":
            return
        seg = packet.payload
        if seg.payload or seg.syn or seg.rst or seg.fin or not seg.has_ack:
            return
        sess_records = db_store.scan("tensor:pair0:sess:")
        if not sess_records:
            return  # pre-session ACKs (handshake) carry no BGP data
        meta = sess_records[0][1]
        base = meta["irs"] + 1
        covered = 0
        status = db_store.scan("tensor:pair0:tcp:")
        if status:
            covered = status[0][1]["in_pos"]
        for key, value in db_store.scan("tensor:pair0:msg:"):
            if ":i:" in key:
                covered = max(covered, value["in_pos"])
        if seg.ack > base + covered:
            violations.append((engine.now, seg.ack, base + covered))

    system.network.tap(check_ack)
    gen = RouteGenerator(DeterministicRandom(10), 64512, next_hop="192.0.2.1")
    remote.speaker.originate_many("v0", gen.routes(1000))
    remote.speaker.readvertise(session)
    engine.advance(20.0)
    assert len(pair.speaker.vrfs["v0"].loc_rib) == 1000
    assert violations == [], violations[:5]


def test_ablation_no_delayed_ack_loses_data():
    """§3.1.1: release ACKs immediately and make the database lag — a
    crash then provably loses messages the remote already discarded.

    With holding enabled under the identical schedule, nothing is lost.
    """

    def run(hold_acks):
        system = TensorSystem(seed=202, hold_acks=hold_acks)
        engine = system.engine
        m1 = system.add_machine("gw-1", "10.1.0.1")
        m2 = system.add_machine("gw-2", "10.2.0.1")
        pair = system.create_pair(
            "pair0", m1, m2, service_addr="10.10.0.1", local_as=65001,
            router_id="10.10.0.1",
            neighbors=[PeerNeighborSpec("192.0.2.1", 64512, vrf_name="v0",
                                        mode="passive")],
        )
        remote = build_remote_peer(system, "remote0", "192.0.2.1", 64512,
                                   link_machines=[m1, m2])
        session = remote.peer_with("10.10.0.1", 65001, vrf_name="v0", mode="active")
        pair.start()
        remote.start()
        engine.advance(10.0)
        gen = RouteGenerator(DeterministicRandom(11), 64512, next_hop="192.0.2.1")
        remote.speaker.originate_many("v0", gen.routes(800))
        # database dies just as the updates arrive: writes never commit
        system.db.fail()
        remote.speaker.readvertise(session)
        engine.advance(2.0)
        applied_live = len(pair.speaker.vrfs["v0"].loc_rib)
        # the primary crashes; then the database comes back (its RAM data
        # from before the failure intact), and the backup recovers
        injector = FailureInjector(system)
        injector.container_failure(pair)
        system.db.recover()
        engine.advance(90.0)
        return system, pair, session, applied_live

    system_h, pair_h, session_h, _live_h = run(hold_acks=True)
    assert session_h.established
    assert len(pair_h.speaker.vrfs["v0"].loc_rib) == 800  # retransmission saved us

    system_n, pair_n, session_n, live_n = run(hold_acks=False)
    # without holding, the primary ACKed data it never replicated: the
    # remote cleared its send buffer, so the backup cannot recover it all
    recovered = len(pair_n.speaker.vrfs["v0"].loc_rib)
    assert live_n > 0  # the primary had applied routes in RAM...
    assert recovered < 800, (
        "expected route loss without delayed ACKs, got full recovery"
    )


def test_storage_bound_holds_under_churn():
    """<= 64 KB of message records per connection at quiescence."""
    system, pair, remotes = build_tensor_fixture(seed=203, routes=500)
    engine = system.engine
    remote, session = remotes[0]
    gen = RouteGenerator(DeterministicRandom(12), 64512, next_hop="192.0.2.1")
    for round_num in range(3):
        remote.speaker.originate_many("v0", gen.routes(400, length=20 + round_num))
        remote.speaker.readvertise(session)
        engine.advance(5.0)
        assert pair.speaker.storage_footprint(system.db.store) < 65536


def test_bfd_relay_keeps_remote_up_through_migration():
    """The remote BFD session must never leave UP during NSR migration."""
    system, pair, remotes = build_tensor_fixture(seed=204, routes=100)
    engine = system.engine
    remote, _session = remotes[0]
    remote_bfd = list(remote.bfd.sessions.values())[0]
    engine.advance(2.0)
    from repro.bfd.packet import BfdState

    assert remote_bfd.state is BfdState.UP
    injector = FailureInjector(system)
    injector.container_failure(pair)
    engine.advance(40.0)
    downs = [t for t, _old, new in remote_bfd.state_changes if new is BfdState.DOWN]
    assert remote_bfd.state is BfdState.UP
    assert not [t for t in downs if t > 10.0], remote_bfd.state_changes
