"""Speaker behaviours: VRF isolation, graceful shutdown, MRAI batching."""


import pytest

from repro.bgp import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.bgp.messages import UpdateMessage
from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack
from repro.workloads.updates import RouteGenerator
from repro.sim.rand import DeterministicRandom


def _two_vrf_setup(engine, network):
    network.enable_fabric(latency=5e-5)
    gw_host = network.add_host("gw", "10.0.0.1")
    gw = BgpSpeaker(engine, TcpStack(engine, gw_host),
                    SpeakerConfig("gw", 65001, "10.0.0.1"))
    remotes = {}
    for i, vrf in enumerate(("red", "blue")):
        addr = f"10.0.0.{i + 2}"
        host = network.add_host(vrf, addr)
        remote = BgpSpeaker(engine, TcpStack(engine, host),
                            SpeakerConfig(vrf, 64512 + i, addr))
        remote.add_vrf(vrf)
        gw.add_vrf(vrf)
        gw.add_peer(PeerConfig(addr, 64512 + i, vrf_name=vrf, mode="passive"))
        remote.add_peer(PeerConfig("10.0.0.1", 65001, vrf_name=vrf, mode="active"))
        remotes[vrf] = remote
    gw.start()
    for remote in remotes.values():
        remote.start()
    engine.advance(3.0)
    return gw, remotes


def test_vrf_isolation(engine, network):
    """Routes learned in one VRF never leak into another (§3.1.2: one VRF
    per peering AS is the separation the splitting design relies on)."""
    gw, remotes = _two_vrf_setup(engine, network)
    gen = RouteGenerator(DeterministicRandom(1), 64512, next_hop="10.0.0.2")
    red_session = list(remotes["red"].sessions.values())[0]
    remotes["red"].originate_many("red", gen.routes(30))
    remotes["red"].readvertise(red_session)
    engine.advance(3.0)
    assert len(gw.vrfs["red"].loc_rib) == 30
    assert len(gw.vrfs["blue"].loc_rib) == 0
    # and the blue peer received nothing
    blue_session = list(remotes["blue"].sessions.values())[0]
    assert blue_session.updates_received == 0


def test_graceful_shutdown_notifies_peers(engine, network):
    gw, remotes = _two_vrf_setup(engine, network)
    sessions = [list(r.sessions.values())[0] for r in remotes.values()]
    assert all(s.established for s in sessions)
    gw.graceful_shutdown()
    engine.advance(2.0)
    # peers saw CEASE and dropped cleanly (no hold-timer wait)
    assert all(not s.established for s in sessions)
    assert all(s.session_drops == 1 for s in sessions)
    assert not gw.running


def test_mrai_batches_changes_into_few_updates(engine, network):
    """Many loc-rib changes inside one MRAI window leave as packed
    UPDATEs, not one message per prefix."""
    network.enable_fabric(latency=5e-5)
    a_host = network.add_host("a", "10.0.0.1")
    b_host = network.add_host("b", "10.0.0.2")
    a = BgpSpeaker(engine, TcpStack(engine, a_host),
                   SpeakerConfig("a", 64512, "10.0.0.1"))
    b = BgpSpeaker(engine, TcpStack(engine, b_host),
                   SpeakerConfig("b", 65001, "10.0.0.2"))
    a.add_vrf("v")
    b.add_vrf("v")
    session_a = a.add_peer(PeerConfig("10.0.0.2", 65001, vrf_name="v", mode="active"))
    b.add_peer(PeerConfig("10.0.0.1", 64512, vrf_name="v", mode="passive"))
    a.start()
    b.start()
    engine.advance(3.0)
    messages_before = session_a.messages_sent
    gen = RouteGenerator(DeterministicRandom(2), 64512, next_hop="10.0.0.1")
    # 200 originations in a burst, all with pooled attributes
    for prefix, attrs in gen.uniform_routes(200):
        a.originate("v", prefix, attrs)
    engine.advance(2.0)
    b_session = list(b.sessions.values())[0]
    assert len(b.vrfs["v"].loc_rib) == 200
    # one MRAI flush, one shared attribute set -> a handful of messages
    assert session_a.messages_sent - messages_before <= 5


def test_withdrawals_batch_through_mrai(engine, network):
    network.enable_fabric(latency=5e-5)
    a_host = network.add_host("a", "10.0.0.1")
    b_host = network.add_host("b", "10.0.0.2")
    a = BgpSpeaker(engine, TcpStack(engine, a_host),
                   SpeakerConfig("a", 64512, "10.0.0.1"))
    b = BgpSpeaker(engine, TcpStack(engine, b_host),
                   SpeakerConfig("b", 65001, "10.0.0.2"))
    a.add_vrf("v")
    b.add_vrf("v")
    session_a = a.add_peer(PeerConfig("10.0.0.2", 65001, vrf_name="v", mode="active"))
    b.add_peer(PeerConfig("10.0.0.1", 64512, vrf_name="v", mode="passive"))
    a.start()
    b.start()
    engine.advance(3.0)
    gen = RouteGenerator(DeterministicRandom(3), 64512, next_hop="10.0.0.1")
    routes = gen.uniform_routes(100)
    for prefix, attrs in routes:
        a.originate("v", prefix, attrs)
    engine.advance(2.0)
    assert len(b.vrfs["v"].loc_rib) == 100
    before = session_a.messages_sent
    for prefix, _attrs in routes:
        a.withdraw_originated("v", prefix)
    engine.advance(2.0)
    assert len(b.vrfs["v"].loc_rib) == 0
    assert session_a.messages_sent - before <= 3  # packed withdrawals
