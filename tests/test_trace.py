"""Unit tests for the causal tracing layer (DESIGN.md §10).

Covers span nesting and trace-id inheritance, ambient context capture
through ``Engine.schedule``, cross-host propagation through the RPC
metadata channel, the disabled-mode fast path (no allocation, no event
context), and determinism of the recorded span stream under
``DeterministicRandom`` seeds.
"""

import pytest

from repro.sim import DeterministicRandom, Engine, Network
from repro.sim.rpc import AsyncRpcServer, RpcClient, RpcServer
from repro.trace import (
    AMBIENT,
    NULL_SPAN,
    NULL_TRACER,
    PHASES,
    Span,
    TraceStore,
    Tracer,
    tracer_of,
)


@pytest.fixture
def traced_engine():
    engine = Engine()
    tracer = Tracer(engine)
    return engine, tracer


@pytest.fixture
def rpc_net(traced_engine):
    engine, tracer = traced_engine
    network = Network(engine, DeterministicRandom(5))
    network.enable_fabric(latency=1e-4)
    a = network.add_host("a", "1.1.1.1")
    b = network.add_host("b", "1.1.1.2")
    return engine, tracer, a, b


# ----------------------------------------------------------------------
# span mechanics
# ----------------------------------------------------------------------

def test_span_nesting_inherits_trace_id(traced_engine):
    engine, tracer = traced_engine
    with tracer.span("outer", kind="root") as outer:
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id
            assert tracer.current is inner
        assert tracer.current is outer
    assert tracer.current is None
    assert outer.trace_id == outer.span_id  # roots name their own trace
    assert outer.end is not None and inner.end is not None
    assert outer.attrs["kind"] == "root"


def test_parent_none_forces_new_root(traced_engine):
    engine, tracer = traced_engine
    with tracer.span("outer"):
        detached = tracer.begin("detached", parent=None)
        assert detached.trace_id == detached.span_id
        detached.finish()


def test_finish_is_idempotent_and_annotate_merges(traced_engine):
    engine, tracer = traced_engine
    span = tracer.begin("s", a=1)
    engine.advance(1.0)
    span.finish(outcome="first")
    first_end = span.end
    engine.advance(1.0)
    span.finish(outcome="second")
    assert span.end == first_end
    assert span.attrs["outcome"] == "first"
    span.annotate(b=2)
    assert span.attrs == {"a": 1, "outcome": "first", "b": 2}
    assert span.duration == pytest.approx(1.0)


def test_complete_records_backdated_begin(traced_engine):
    engine, tracer = traced_engine
    engine.advance(2.0)
    span = tracer.complete("phase", begin=0.5, parent=None)
    assert span.begin == 0.5
    assert span.end == 2.0


# ----------------------------------------------------------------------
# ambient propagation through the event loop
# ----------------------------------------------------------------------

def test_schedule_captures_ambient_context(traced_engine):
    engine, tracer = traced_engine
    seen = []

    def later():
        child = tracer.begin("child")
        seen.append(child)
        child.finish()

    with tracer.span("root") as root:
        engine.schedule(1.0, later)
    engine.run_until_idle()
    assert seen[0].trace_id == root.trace_id
    assert seen[0].parent_id == root.span_id


def test_context_does_not_leak_between_events(traced_engine):
    engine, tracer = traced_engine
    seen = []

    def unrelated():
        seen.append(tracer.current)

    with tracer.span("root"):
        engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, unrelated)  # scheduled outside any span
    engine.run_until_idle()
    assert seen == [None]


# ----------------------------------------------------------------------
# RPC metadata propagation
# ----------------------------------------------------------------------

def test_rpc_server_span_joins_client_trace(rpc_net):
    engine, tracer, a, b = rpc_net
    RpcServer(engine, b, 7000, lambda method, body: {"ok": True})
    client = RpcClient(engine, a, "1.1.1.2", 7000)
    with tracer.span("root") as root:
        client.call("ping", {}, on_reply=lambda _r: None)
    engine.run_until_idle()

    (client_span,) = tracer.store.spans(name="rpc.ping")
    (server_span,) = tracer.store.spans(name="rpc.server.ping")
    assert client_span.trace_id == root.trace_id
    assert server_span.trace_id == root.trace_id
    assert server_span.parent_id == client_span.span_id
    assert client_span.attrs["outcome"] == "reply"
    assert server_span.end >= server_span.begin > root.begin


def test_async_rpc_server_span_covers_deferred_reply(rpc_net):
    engine, tracer, a, b = rpc_net

    def handler(method, body, respond):
        engine.schedule(0.5, respond, {"deferred": True})

    AsyncRpcServer(engine, b, 7000, handler)
    client = RpcClient(engine, a, "1.1.1.2", 7000)
    with tracer.span("root") as root:
        client.call("work", {}, on_reply=lambda _r: None)
    engine.run_until_idle()

    (server_span,) = tracer.store.spans(name="rpc.server.work")
    assert server_span.trace_id == root.trace_id
    assert server_span.duration >= 0.5


def test_rpc_timeout_annotates_client_span(rpc_net):
    engine, tracer, a, b = rpc_net
    # No server bound: the call must time out.
    client = RpcClient(engine, a, "1.1.1.2", 7000)
    client.call("void", {}, on_reply=lambda _r: None,
                on_timeout=lambda: None, timeout=0.2)
    engine.run_until_idle()
    (client_span,) = tracer.store.spans(name="rpc.void")
    assert client_span.attrs["outcome"] == "timeout"
    assert client_span.end is not None


# ----------------------------------------------------------------------
# disabled-mode fast path
# ----------------------------------------------------------------------

def test_disabled_engine_records_no_event_context():
    engine = Engine()  # no tracer installed
    engine.schedule(1.0, lambda: None)
    (event,) = engine._queue
    assert event.ctx is None
    engine.run_until_idle()


def test_null_tracer_is_allocation_free():
    assert tracer_of(Engine()) is NULL_TRACER
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.begin("x") is NULL_SPAN
    assert NULL_TRACER.begin("y", attr=1) is NULL_SPAN  # same singleton
    assert NULL_TRACER.complete("z", begin=0.0) is NULL_SPAN
    assert not NULL_SPAN  # falsy, so `if span:` guards skip work
    assert NULL_TRACER.context() is None
    with NULL_TRACER.span("w") as span:
        assert span is NULL_SPAN
    NULL_SPAN.finish(outcome="ignored")
    NULL_SPAN.annotate(extra=2)
    assert NULL_SPAN.attrs == {}


def test_disabled_fixture_produces_zero_spans():
    from conftest import build_tensor_fixture

    system, _pair, _remotes = build_tensor_fixture(seed=7, routes=5)
    assert system.tracer is None
    assert system.trace_store is None
    assert system.engine._trace_hook is None


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

def _span_signature(store):
    return [
        (s.name, s.begin, s.end, s.trace_id, s.parent_id, sorted(s.attrs))
        for s in store.spans()
    ]


def test_traced_runs_are_deterministic():
    from conftest import build_tensor_fixture

    signatures = []
    for _ in range(2):
        system, _pair, _remotes = build_tensor_fixture(
            seed=11, routes=20, tracing=True
        )
        signatures.append(_span_signature(system.trace_store))
    assert signatures[0] == signatures[1]
    assert len(signatures[0]) > 0


# ----------------------------------------------------------------------
# store queries
# ----------------------------------------------------------------------

def test_store_filters_and_histogram(traced_engine):
    engine, tracer = traced_engine
    store = tracer.store
    for i in range(3):
        span = tracer.begin("work", parent=None, shard=i % 2)
        engine.advance(0.001 * (i + 1))
        span.finish()
    open_span = tracer.begin("work", parent=None, shard=0)

    assert len(store.spans(name="work")) == 4
    assert len(store.spans(name="work", shard=0)) == 3
    assert len(store.spans(name="work", ended=True)) == 3
    assert store.spans(name="work", ended=False) == [open_span]
    assert store.durations("work") == pytest.approx([0.001, 0.002, 0.003])

    hist = store.histogram("work", buckets=(0.0015, 0.0025))
    assert hist == [(0.0015, 1), (0.0025, 1), (float("inf"), 1)]

    assert PHASES == ("receive", "replicate", "ack_release", "apply",
                      "propagate")
