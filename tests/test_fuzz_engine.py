"""The fuzz engine: runs, coverage keys, two-budget shrinking, repros.

The ablation (``hold_acks=False``) is the designed-in bug the chaos
engine also pins: here it doubles as the fuzzer's violation-path
regression — found, shrunk across schedule *and* config/topology
dimensions, written out as a replayable ``fuzz_repro_<seed>.py``.
"""

import os
import pathlib
import subprocess
import sys

from repro.failures.chaos import ShrinkBudget
from repro.fuzz import (
    coverage_key,
    generate_fuzz_spec,
    run_fuzz_spec,
    run_profile,
    shrink_fuzz_spec,
    write_fuzz_repro,
)
from repro.fuzz.build import FuzzPreparedRun
from repro.fuzz.loop import fuzz_loop


def test_run_is_deterministic_and_covered():
    spec = generate_fuzz_spec(1)
    first = run_fuzz_spec(spec, tracing=True)
    second = run_fuzz_spec(spec, tracing=True)
    assert first.first_violation is None, first.summary()
    assert first.completed
    assert first.system.rib_digest() == second.system.rib_digest()
    assert first.events_executed == second.events_executed
    profile = run_profile(first)
    assert profile == run_profile(second)
    assert coverage_key(profile) == coverage_key(run_profile(second))
    # the verdict bitmap shows real oracle engagement, not just absence
    exercised = dict(profile["oracles"])
    assert exercised.get("convergence") is False  # exercised, green
    assert exercised.get("session_continuity") is False
    assert profile["phases"], "traced run must contribute a phase shape"


def test_policy_censored_convergence_stays_green():
    """An import policy that denies a burst block must not trip the
    convergence oracle: the oracle model filters expected sets through
    the same policy."""
    spec = generate_fuzz_spec(1)
    target = spec.workload[0]
    remote = target["remote"]
    octet = int(target["base"].split(".")[1])
    spec.neighbors[remote]["import_policy"] = {
        "name": "censor",
        "default_permit": True,
        "entries": [{
            "permit": False,
            "match_prefixes": [f"{10 + remote}.{(octet // 8) * 8}.0.0/13"],
        }],
    }
    result = run_fuzz_spec(spec)
    assert result.first_violation is None, result.summary()
    # the censored block really was kept out of the gateway Loc-RIB
    suite = next(
        s for s in result.suites
        for r, _sess in s.remotes
        if r.name == f"remote{remote}"
    )
    local = [i for i, (r, _s) in enumerate(suite.remotes)
             if r.name == f"remote{remote}"][0]
    assert suite._accepted(local) != set(suite.live[local])


def test_ablation_trips_shrinks_on_both_budgets_and_replays(tmp_path):
    spec = generate_fuzz_spec(1)
    result = run_fuzz_spec(spec, hold_acks=False)
    violation = result.first_violation
    assert violation is not None
    assert violation.oracle == "ack_durability"

    budget = ShrinkBudget.split(40, config_share=0.4)
    shrunk, final, runs = shrink_fuzz_spec(
        spec, hold_acks=False, expect_oracle="ack_durability", budget=budget,
    )
    assert final is not None
    assert final.first_violation.oracle == "ack_durability"
    # config/topology dimensions actually shrank: seed 1 generates a
    # 4-neighbor 2-pair grouped layout; the minimized repro is 1/1
    assert len(shrunk.neighbors) < len(spec.neighbors)
    assert shrunk.pair_count() == 1
    assert budget.used["config"] >= 1
    assert budget.used["schedule"] >= 1
    assert runs == budget.total_used

    path = str(tmp_path / "fuzz_repro_1.py")
    write_fuzz_repro(shrunk, violation, False, path)
    root = pathlib.Path(__file__).resolve().parent.parent
    env = dict(os.environ, PYTHONPATH=str(root / "src"))
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, env=env, cwd=str(root),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "reproduced: ack_durability" in proc.stdout


def test_partial_fuzz_run_is_not_a_pass():
    spec = generate_fuzz_spec(1)
    prepared = FuzzPreparedRun(spec, stop_on_violation=False)
    prepared.step_to(prepared.engine.now + 1.0)
    result = prepared.finish()
    assert result.partial
    assert result.first_violation is None


def test_fuzz_loop_is_seed_deterministic(tmp_path):
    logs = []
    first = fuzz_loop(seed=5, iterations=3, tracing=False,
                      out_dir=str(tmp_path), log=logs.append)
    second = fuzz_loop(seed=5, iterations=3, tracing=False,
                       out_dir=str(tmp_path), log=lambda _m: None)
    assert [e["key"] for e in first.corpus] == [e["key"] for e in second.corpus]
    assert first.runs == second.runs == 3
    assert len(logs) == 3
