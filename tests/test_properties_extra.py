"""Additional property-based tests: KV store model, coalescer durability,
prefix trie vs brute force, packing/attribute interactions."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bgp import Prefix, PrefixTrie
from repro.core.replication import WriteCoalescer
from repro.kvstore import KeyValueStore, KvClient, KvServer
from repro.sim import DeterministicRandom, Engine, Network

_SETTINGS = dict(max_examples=30, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


# -- KV store vs dict model -----------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set"), st.integers(0, 20), st.integers(0, 5)),
        st.tuples(st.just("delete"), st.integers(0, 20), st.just(0)),
        st.tuples(st.just("get"), st.integers(0, 20), st.just(0)),
    ),
    max_size=60,
)


@given(ops=_ops)
@settings(**_SETTINGS)
def test_store_matches_dict_model(ops):
    store = KeyValueStore()
    model = {}
    for op, key_num, value in ops:
        key = f"k{key_num}"
        if op == "set":
            store.set(key, value)
            model[key] = value
        elif op == "delete":
            removed = store.delete([key])
            assert removed == (1 if key in model else 0)
            model.pop(key, None)
        else:
            assert store.get(key) == model.get(key)
    assert len(store) == len(model)
    assert dict(store.scan("k")) == model


# -- coalescer durability ---------------------------------------------------------


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["set", "delete"]), st.integers(0, 15),
                  st.integers(0, 9)),
        min_size=1, max_size=50,
    )
)
@settings(**_SETTINGS)
def test_coalescer_converges_to_sequential_semantics(operations):
    """Whatever interleaving of sets/deletes is enqueued, after the engine
    drains, the server holds exactly what last-write-wins predicts."""
    engine = Engine()
    network = Network(engine, DeterministicRandom(1))
    network.enable_fabric(latency=5e-5)
    client_host = network.add_host("c", "1.1.1.1")
    server = KvServer(engine, network.add_host("s", "1.1.1.2"))
    coalescer = WriteCoalescer(KvClient(engine, client_host, "1.1.1.2"))
    model = {}
    for op, key_num, value in operations:
        key = f"k{key_num}"
        if op == "set":
            coalescer.set(key, value)
            model[key] = value
        else:
            coalescer.delete(key)
            model.pop(key, None)
    engine.run_until_idle()
    assert dict(server.store.scan("k")) == model
    assert coalescer.backlog == 0


# -- prefix trie vs brute force ----------------------------------------------------


@st.composite
def prefix_strategy(draw):
    length = draw(st.integers(0, 32))
    value = draw(st.integers(0, 2**32 - 1))
    return Prefix(value, length)


@given(entries=st.lists(prefix_strategy(), max_size=25),
       queries=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=10))
@settings(**_SETTINGS)
def test_trie_longest_match_equals_bruteforce(entries, queries):
    trie = PrefixTrie()
    table = {}
    for index, prefix in enumerate(entries):
        trie.insert(prefix, index)
        table[prefix] = index  # duplicate prefixes: last wins, like the trie
    for address in queries:
        host = Prefix(address, 32)
        expected = None
        for prefix, value in table.items():
            if prefix.contains(host):
                if expected is None or prefix.length > expected[0]:
                    expected = (prefix.length, value)
        assert trie.longest_match(host) == expected


@given(entries=st.lists(prefix_strategy(), max_size=25, unique_by=lambda p: (p.value, p.length)))
@settings(**_SETTINGS)
def test_trie_remove_restores_previous_state(entries):
    trie = PrefixTrie()
    for index, prefix in enumerate(entries):
        trie.insert(prefix, index)
    for prefix in entries:
        assert trie.remove(prefix)
    assert len(trie) == 0
    for prefix in entries:
        assert trie.exact(prefix) is None


# -- BFD timing property --------------------------------------------------------------


@given(tx_interval=st.floats(0.02, 0.5), detect_mult=st.integers(2, 5),
       seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_bfd_detection_bounded_by_mult_times_interval(tx_interval, detect_mult, seed):
    from repro.bfd import BfdProcess, BfdState

    engine = Engine()
    rng = DeterministicRandom(seed)
    network = Network(engine, rng)
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=1e-4, bandwidth=1e9)
    pa = BfdProcess(engine, a, rng=rng.stream("a"))
    pb = BfdProcess(engine, b, rng=rng.stream("b"))
    pa.add_session("v", "10.0.0.2", tx_interval=tx_interval, detect_mult=detect_mult)
    sb = pb.add_session("v", "10.0.0.1", tx_interval=tx_interval, detect_mult=detect_mult)
    pa.start()
    pb.start()
    engine.advance(tx_interval * 10)
    if sb.state is not BfdState.UP:
        return  # session did not form in the window; nothing to measure
    crash_time = engine.now
    pa.crash()
    engine.advance(tx_interval * (detect_mult + 3))
    assert sb.state is BfdState.DOWN
    detection = sb.last_down_at - crash_time
    # bounded by detect_mult x interval plus one in-flight packet's grace
    assert detection <= detect_mult * tx_interval + tx_interval + 0.01
