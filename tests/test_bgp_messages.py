"""BGP message wire formats and the incremental stream decoder."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp import (
    KeepaliveMessage,
    MessageDecoder,
    NotificationMessage,
    OpenMessage,
    PathAttributes,
    Prefix,
    RouteRefreshMessage,
    UpdateMessage,
)
from repro.bgp.attributes import AsPath
from repro.bgp.capabilities import Capabilities
from repro.bgp.errors import BgpError, NotificationCode
from repro.bgp.messages import HEADER_SIZE, MAX_MESSAGE_SIZE, decode_message


def test_keepalive_is_bare_header():
    wire = KeepaliveMessage().to_wire()
    assert len(wire) == HEADER_SIZE
    assert decode_message(wire) == KeepaliveMessage()


def test_open_roundtrip_with_capabilities():
    msg = OpenMessage(
        65001, 90, 0x0A0B0C0D,
        Capabilities(four_octet_as=65001, route_refresh=True,
                     graceful_restart_time=120),
    )
    decoded = decode_message(msg.to_wire())
    assert decoded == msg
    assert decoded.capabilities.graceful_restart_time == 120


def test_open_4_octet_asn_uses_as_trans():
    msg = OpenMessage(70000, 90, 1, Capabilities(four_octet_as=70000))
    wire = msg.to_wire()
    # 2-octet field carries AS_TRANS; decoder recovers the real ASN
    assert decode_message(wire).asn == 70000


def test_update_roundtrip():
    msg = UpdateMessage(
        withdrawn=[Prefix.parse("10.9.0.0/16")],
        attributes=PathAttributes(as_path=AsPath.sequence(65001), next_hop="1.2.3.4"),
        nlri=[Prefix.parse("10.0.0.0/8"), Prefix.parse("192.0.2.0/24")],
    )
    assert decode_message(msg.to_wire()) == msg
    assert msg.route_count() == 3


def test_pure_withdrawal_update():
    msg = UpdateMessage(withdrawn=[Prefix.parse("10.0.0.0/8")])
    decoded = decode_message(msg.to_wire())
    assert decoded.attributes is None
    assert decoded.withdrawn == msg.withdrawn


def test_update_over_4096_rejected():
    nlri = [Prefix(i << 8, 24) for i in range(2000)]
    msg = UpdateMessage(attributes=PathAttributes(next_hop="1.1.1.1"), nlri=nlri)
    with pytest.raises(BgpError):
        msg.to_wire()


def test_notification_roundtrip():
    msg = NotificationMessage(NotificationCode.CEASE, 2, b"shutdown")
    decoded = decode_message(msg.to_wire())
    assert decoded == msg


def test_route_refresh_roundtrip():
    msg = RouteRefreshMessage(afi=2, safi=1)
    assert decode_message(msg.to_wire()) == msg


def test_decoder_yields_sizes():
    decoder = MessageDecoder()
    k = KeepaliveMessage().to_wire()
    out = list(decoder.feed(k + k))
    assert [size for _m, size in out] == [HEADER_SIZE, HEADER_SIZE]
    assert decoder.bytes_consumed == 2 * HEADER_SIZE
    assert decoder.messages_decoded == 2


def test_decoder_handles_fragmentation():
    msg = UpdateMessage(
        attributes=PathAttributes(next_hop="1.2.3.4"),
        nlri=[Prefix.parse("10.0.0.0/8")],
    )
    wire = msg.to_wire()
    decoder = MessageDecoder()
    out = []
    for i in range(len(wire)):
        out.extend(decoder.feed(wire[i : i + 1]))
    assert len(out) == 1
    assert out[0][0] == msg
    assert out[0][1] == len(wire)
    assert decoder.pending_bytes == 0


def test_decoder_partial_message_buffers():
    wire = KeepaliveMessage().to_wire()
    decoder = MessageDecoder()
    assert list(decoder.feed(wire[:10])) == []
    assert decoder.pending_bytes == 10


def test_decoder_bad_marker_raises():
    decoder = MessageDecoder()
    with pytest.raises(BgpError):
        list(decoder.feed(b"\x00" * HEADER_SIZE))


def test_decoder_bad_length_raises():
    wire = bytearray(KeepaliveMessage().to_wire())
    wire[16:18] = (MAX_MESSAGE_SIZE + 1).to_bytes(2, "big")
    with pytest.raises(BgpError):
        list(MessageDecoder().feed(bytes(wire)))


def test_decoder_bad_type_raises():
    wire = bytearray(KeepaliveMessage().to_wire())
    wire[18] = 99
    with pytest.raises(BgpError):
        list(MessageDecoder().feed(bytes(wire)))


def test_decode_message_rejects_trailing_garbage():
    wire = KeepaliveMessage().to_wire()
    with pytest.raises(BgpError):
        decode_message(wire + wire)


def test_interleaved_message_types_stream():
    msgs = [
        OpenMessage(65001, 90, 7, Capabilities(four_octet_as=65001)),
        KeepaliveMessage(),
        UpdateMessage(attributes=PathAttributes(next_hop="9.9.9.9"),
                      nlri=[Prefix.parse("10.0.0.0/24")]),
        NotificationMessage(NotificationCode.CEASE, 4),
    ]
    stream = b"".join(m.to_wire() for m in msgs)
    decoded = [m for m, _s in MessageDecoder().feed(stream)]
    assert decoded == msgs


def test_capabilities_roundtrip_empty():
    caps = Capabilities(afis=((1, 1),), route_refresh=False)
    assert Capabilities.from_wire(caps.to_wire()).route_refresh is False


def test_capabilities_multiprotocol_v6():
    caps = Capabilities(afis=((1, 1), (2, 1)), four_octet_as=65001)
    decoded = Capabilities.from_wire(caps.to_wire())
    assert (2, 1) in decoded.afis


@st.composite
def update_strategy(draw):
    count = draw(st.integers(min_value=0, max_value=50))
    nlri = [Prefix((i * 7919) % (2**24) << 8, 24) for i in range(count)]
    withdrawn_count = draw(st.integers(min_value=0, max_value=20))
    withdrawn = [Prefix((i * 104729) % (2**16) << 16, 16) for i in range(withdrawn_count)]
    attrs = None
    if nlri:
        asns = draw(st.lists(st.integers(min_value=1, max_value=2**32 - 1),
                             min_size=1, max_size=5))
        attrs = PathAttributes(as_path=AsPath.sequence(*asns), next_hop="1.2.3.4")
    return UpdateMessage(withdrawn=withdrawn, attributes=attrs, nlri=nlri)


@given(msg=update_strategy())
def test_update_wire_roundtrip_property(msg):
    assert decode_message(msg.to_wire()) == msg


@given(splits=st.lists(st.integers(min_value=1, max_value=64), min_size=0, max_size=30),
       count=st.integers(min_value=1, max_value=20))
def test_decoder_arbitrary_fragmentation_property(splits, count):
    """However the byte stream is fragmented, decoding is identical."""
    msgs = [KeepaliveMessage().to_wire() for _ in range(count)]
    stream = b"".join(msgs)
    decoder = MessageDecoder()
    out = []
    offset = 0
    for split in splits:
        out.extend(decoder.feed(stream[offset : offset + split]))
        offset += split
    out.extend(decoder.feed(stream[offset:]))
    assert len(out) == count
    assert decoder.bytes_consumed == len(stream)
