"""Unit tests for the conservative parallel runtime.

The ping-pong scenario used throughout: two shards, one host each,
exchanging a counter over a cross-shard link.  Builders are module-level
functions so the spawn-based process mode can pickle them by reference.
"""

import pytest

from repro.sim import Engine, Network, SimulationError
from repro.sim.network import Packet
from repro.sim.parallel import (
    BoundaryLink,
    ParallelRunner,
    ShardSpec,
    assign_shards,
    partition_items,
)
from repro.sim.parallel.boundary import ShardBoundary

LATENCY = 0.01


class PingProgram:
    def __init__(self, shard_id, params, boundary):
        self.engine = Engine()
        self.network = Network(self.engine)
        self.host = self.network.add_host(f"h-{shard_id}", params["addr"])
        self.peer = params["peer"]
        self.limit = params.get("limit", 6)
        self.log = []
        self.host.bind("udp", 7, self._on_packet)
        boundary.attach(self.network)
        if params.get("starts"):
            self.engine.schedule(0.5, self._send, 0)

    def _send(self, n):
        self.log.append(("tx", round(self.engine.now, 6), n))
        self.host.send(
            Packet(self.host.address, self.peer, "udp", 7, 7, n, 100)
        )

    def _on_packet(self, packet):
        n = packet.payload
        self.log.append(("rx", round(self.engine.now, 6), n))
        if n < self.limit:
            self._send(n + 1)

    def results(self):
        return self.log


def build_ping(shard_id, params, boundary):
    return PingProgram(shard_id, params, boundary)


def ping_specs(latency=LATENCY):
    return [
        ShardSpec(
            "A", build_ping,
            {"addr": "10.0.0.1", "peer": "10.0.0.2", "starts": True},
            links=[BoundaryLink("10.0.0.1", "10.0.0.2", "B", latency)],
        ),
        ShardSpec(
            "B", build_ping,
            {"addr": "10.0.0.2", "peer": "10.0.0.1"},
            links=[BoundaryLink("10.0.0.2", "10.0.0.1", "A", latency)],
        ),
    ]


# ----------------------------------------------------------------------
# partitioner
# ----------------------------------------------------------------------

def test_partition_balances_by_weight():
    items = [("a", 5.0), ("b", 1.0), ("c", 1.0), ("d", 1.0), ("e", 2.0)]
    groups = partition_items(items, 2, weight=lambda kv: kv[1])
    loads = sorted(sum(w for _n, w in group) for group in groups)
    assert loads == [5.0, 5.0]


def test_partition_is_deterministic_and_order_preserving():
    items = list(range(10))
    first = partition_items(items, 3)
    second = partition_items(items, 3)
    assert first == second
    for group in first:
        assert group == sorted(group)  # input order inside each group


def test_partition_rejects_nonpositive_bins():
    with pytest.raises(ValueError):
        partition_items([1], 0)


def test_assign_shards_clamps_to_spec_count():
    specs = ping_specs()
    groups = assign_shards(specs, 8)
    assert len(groups) == 2
    assert sorted(s.shard_id for g in groups for s in g) == ["A", "B"]


# ----------------------------------------------------------------------
# boundary adapters
# ----------------------------------------------------------------------

def test_boundary_requires_positive_latency():
    with pytest.raises(SimulationError):
        BoundaryLink("10.0.0.1", "10.0.0.2", "B", 0.0)


def test_boundary_attach_requires_local_endpoint():
    engine = Engine()
    network = Network(engine)
    boundary = ShardBoundary(
        "A", [BoundaryLink("10.0.0.1", "10.0.0.2", "B", LATENCY)]
    )
    with pytest.raises(SimulationError):
        boundary.attach(network)


def test_boundary_export_captures_at_send_time_with_path_delay():
    engine = Engine()
    network = Network(engine)
    host = network.add_host("h", "10.0.0.1")
    boundary = ShardBoundary(
        "A", [BoundaryLink("10.0.0.1", "10.0.0.2", "B", LATENCY)]
    )
    boundary.attach(network)
    engine.advance(1.0)
    host.send(Packet("10.0.0.1", "10.0.0.2", "udp", 7, 7, "ping", 100))
    frames = boundary.drain()
    assert list(frames) == ["B"]
    (frame,) = frames["B"]
    assert frame.src_shard == "A"
    assert frame.packet.payload == "ping"
    # arrival = send instant + link latency + serialization of 100 bytes
    assert frame.arrival_time == pytest.approx(1.0 + LATENCY, abs=1e-6)
    assert frame.arrival_time > 1.0 + LATENCY  # serialization is charged
    assert boundary.drain() == {}  # drain clears


def test_boundary_inject_merges_deterministically():
    engine = Engine()
    network = Network(engine)
    network.add_host("h", "10.0.0.1")
    sink = ShardBoundary("B", [])
    sink.network = network
    order = []
    network.host_by_address("10.0.0.1").bind(
        "udp", 7, lambda packet: order.append(packet.payload)
    )

    def frame(arrival, src, seq, tag):
        from repro.sim.parallel.boundary import CrossShardFrame

        return CrossShardFrame(
            "B", arrival, src, seq,
            Packet("x", "10.0.0.1", "udp", 7, 7, tag, 10),
        )

    # delivered in (arrival, src_shard, seq) order regardless of batching
    sink.inject(engine, [
        frame(2.0, "C", 1, "late"),
        frame(1.0, "C", 2, "early-c"),
        frame(1.0, "A", 9, "early-a"),
    ])
    engine.run_until_idle()
    assert order == ["early-a", "early-c", "late"]


def test_boundary_drops_frames_for_missing_hosts():
    engine = Engine()
    network = Network(engine)
    network.add_host("h", "10.0.0.1")
    sink = ShardBoundary("B", [])
    sink.network = network
    from repro.sim.parallel.boundary import CrossShardFrame

    sink.inject(engine, [CrossShardFrame(
        "B", 1.0, "A", 1, Packet("x", "10.9.9.9", "udp", 7, 7, "lost", 10)
    )])
    engine.run_until_idle()
    assert network.packets_dropped == 1


# ----------------------------------------------------------------------
# the windowed runner
# ----------------------------------------------------------------------

def test_ping_pong_crosses_shards_at_link_latency():
    result = ParallelRunner(ping_specs(), workers=1).run(2.0)
    a, b = result.shard_results["A"], result.shard_results["B"]
    assert [n for kind, _t, n in a if kind == "tx"] == [0, 2, 4, 6]
    assert [n for kind, _t, n in b if kind == "rx"] == [0, 2, 4, 6]
    # every hop costs one link latency
    assert b[0][1] == pytest.approx(0.5 + LATENCY, abs=1e-4)
    assert a[1][1] == pytest.approx(0.5 + 2 * LATENCY, abs=1e-4)


def test_lookahead_and_window_count():
    runner = ParallelRunner(ping_specs(), workers=1)
    assert runner.lookahead == LATENCY
    result = runner.run(1.0)
    # Adaptive windows: the fixed protocol would need ~100 barriers
    # (1.0s / 0.01s lookahead); the adaptive horizon only narrows while
    # the ping-pong is in flight and leaps over the quiet lead-in
    # (nothing before 0.5s) and the quiet tail after the exchange.
    assert 2 <= result.windows < 30
    assert result.window_edges[0] == 0.0
    assert result.window_edges[-1] == pytest.approx(1.0)
    widths = result.window_widths()
    assert sum(widths) == pytest.approx(1.0)
    # the lead-in is one wide window ending at first-send + lookahead
    assert result.window_edges[1] == pytest.approx(0.5 + LATENCY, abs=1e-9)
    wide_count, wide_span = result.wide_windows()
    assert wide_count >= 2  # the lead-in and the tail, at least
    assert wide_span > 0.9  # quiet time dominates this scenario


def test_adaptive_windows_fall_back_to_lookahead_under_traffic():
    # while the exchange is in flight, consecutive barriers are one
    # lookahead (plus the serialization sliver) apart — the
    # conservative fallback under traffic
    result = ParallelRunner(ping_specs(), workers=1).run(1.0)
    narrow = [w for w in result.window_widths() if w <= LATENCY * 1.5]
    assert len(narrow) >= 4  # several hops synchronized at ~width L


def test_closed_shards_run_in_a_single_window():
    spec = ShardSpec("solo", build_ping, {"addr": "10.0.0.1", "peer": "10.0.0.9"})
    runner = ParallelRunner([spec], workers=1)
    assert runner.lookahead is None
    result = runner.run(5.0)
    assert result.windows == 1


def test_runner_validates_specs():
    with pytest.raises(SimulationError):
        ParallelRunner([], workers=1)
    dup = [ping_specs()[0], ping_specs()[0]]
    with pytest.raises(SimulationError):
        ParallelRunner(dup, workers=1)
    dangling = ShardSpec(
        "A", build_ping, {"addr": "10.0.0.1", "peer": "10.0.0.2"},
        links=[BoundaryLink("10.0.0.1", "10.0.0.2", "nowhere", LATENCY)],
    )
    with pytest.raises(SimulationError):
        ParallelRunner([dangling], workers=1)


def test_builder_string_resolution_rejects_bad_spec():
    from repro.sim.parallel.runtime import _resolve_builder

    assert _resolve_builder("repro.workloads.fleet:build_fleet_site")
    with pytest.raises(SimulationError):
        _resolve_builder("no-colon-here")


def test_result_accounting_and_projection():
    result = ParallelRunner(ping_specs(), workers=1).run(1.0)
    assert result.executed > 0
    assert set(result.busy) == {"A", "B"}
    assert len(result.window_edges) == result.windows + 1
    total_busy = sum(result.busy.values())
    # projection at 1 worker is the full busy sum; at 2 it can only shrink
    assert result.projected_wall(1) == pytest.approx(total_busy, rel=1e-6)
    assert result.projected_wall(2) <= total_busy + 1e-9
    # projections exist only for the requested worker counts
    with pytest.raises(SimulationError, match="no projection"):
        result.projected_wall(7)
    # the timing split is recorded and self-consistent
    assert result.timing["compute_s"] == pytest.approx(total_busy, rel=1e-6)
    assert result.timing["wall_s"] == result.wall
    for key in ("serialize_s", "barrier_send_s", "barrier_wait_s"):
        assert result.timing[key] >= 0.0
    # in-process transport never pickles: frames counted, zero blob
    # bytes — and the explicit marker says the zero means "no encoding
    # happened", not "encoding was free"
    assert result.transport["frames"] > 0
    assert result.transport["bytes"] == 0
    assert result.transport["kind"] == "in_process"
    assert result.transport["in_process"] is True


def test_projection_workers_override():
    runner = ParallelRunner(ping_specs(), workers=1,
                            projection_workers=(1,))
    result = runner.run(1.0)
    assert sorted(result.projections) == [1]
    with pytest.raises(SimulationError, match="no projection"):
        result.projected_wall(2)


def test_process_mode_matches_local_mode():
    local = ParallelRunner(ping_specs(), workers=1).run(1.0)
    spawned = ParallelRunner(ping_specs(), workers=2).run(1.0)
    assert spawned.workers == 2
    assert local.shard_results == spawned.shard_results
    assert spawned.transport["in_process"] is False
    assert spawned.transport["bytes"] > 0


def test_local_mode_propagates_builder_errors():
    def boom(shard_id, params, boundary):
        raise RuntimeError("builder exploded")

    with pytest.raises(RuntimeError, match="builder exploded"):
        ParallelRunner(
            [ShardSpec("X", boom, {})], workers=1
        ).run(1.0)


def test_process_mode_propagates_worker_errors():
    # a builder string that fails to resolve inside the spawned worker
    # must surface in the parent as a RuntimeError with the traceback
    spec = ShardSpec("X", "repro.sim.parallel.runtime:no_such_builder")
    with pytest.raises(RuntimeError, match="no_such_builder"):
        ParallelRunner([spec], workers=2).run(1.0)


# ----------------------------------------------------------------------
# worker lifecycle: crashes mid-window, silent deaths, stragglers
# ----------------------------------------------------------------------

class MidWindowCrashProgram:
    """Runs fine through build, then detonates inside a window."""

    def __init__(self, shard_id, params, boundary):
        self.engine = Engine()
        self.network = Network(self.engine)
        self.network.add_host(f"h-{shard_id}", params["addr"])
        boundary.attach(self.network)
        self.engine.schedule(0.5, self._boom)

    def _boom(self):
        raise ValueError("kaboom mid-window")

    def results(self):
        return ()


def build_mid_window_crash(shard_id, params, boundary):
    return MidWindowCrashProgram(shard_id, params, boundary)


def crash_pair_specs():
    return [
        ShardSpec(
            "A", build_mid_window_crash, {"addr": "10.0.0.1"},
            links=[BoundaryLink("10.0.0.1", "10.0.0.2", "B", LATENCY)],
        ),
        ShardSpec(
            "B", build_ping, {"addr": "10.0.0.2", "peer": "10.0.0.1"},
            links=[BoundaryLink("10.0.0.2", "10.0.0.1", "A", LATENCY)],
        ),
    ]


def test_worker_crash_mid_window_surfaces_traceback_without_hanging():
    # the worker catches the exception inside its window loop and ships
    # the traceback; the coordinator re-raises promptly (no deadlock on
    # the barrier) and the finally-path closes every worker
    with pytest.raises(RuntimeError, match="kaboom mid-window"):
        ParallelRunner(crash_pair_specs(), workers=2).run(2.0)


def build_exit_hard(shard_id, params, boundary):
    import os

    os._exit(3)


def test_worker_dying_without_traceback_raises_runtime_error():
    # a worker that dies outright (no error message, pipe just closes)
    # must surface as RuntimeError, not EOFError or a hang
    spec = ShardSpec("X", build_exit_hard)
    with pytest.raises(RuntimeError, match="died without"):
        ParallelRunner([spec], workers=2).run(1.0)


def build_sleepy(shard_id, params, boundary):
    import time as _time

    _time.sleep(60)


def test_close_terminates_stragglers_via_timeout_path():
    import multiprocessing
    import time as _time

    from repro.sim.parallel.runtime import _ProcessWorker

    context = multiprocessing.get_context("spawn")
    worker = _ProcessWorker(
        [ShardSpec("X", build_sleepy)], context, join_timeout=0.5
    )
    try:
        assert worker.process.is_alive()
        start = _time.perf_counter()
        worker.close()  # "stop" goes unread; join times out; terminate
        elapsed = _time.perf_counter() - start
    finally:
        if worker.process.is_alive():  # belt and braces on test failure
            worker.process.kill()
    assert not worker.process.is_alive()
    assert elapsed < 30  # nowhere near the 60s the worker wanted


# ----------------------------------------------------------------------
# adaptive lookahead: the conservative contract is verified at runtime
# ----------------------------------------------------------------------

class LyingEotProgram(PingProgram):
    """Claims its boundary is quiet forever, then sends anyway."""

    def next_outbound_time(self):
        return 1e9


def build_lying_eot(shard_id, params, boundary):
    return LyingEotProgram(shard_id, params, boundary)


def test_underreported_next_outbound_time_fails_loudly():
    specs = [
        ShardSpec(
            "A", build_lying_eot,
            {"addr": "10.0.0.1", "peer": "10.0.0.2", "starts": True},
            links=[BoundaryLink("10.0.0.1", "10.0.0.2", "B", LATENCY)],
        ),
        ShardSpec(
            "B", build_ping, {"addr": "10.0.0.2", "peer": "10.0.0.1"},
            links=[BoundaryLink("10.0.0.2", "10.0.0.1", "A", LATENCY)],
        ),
    ]
    with pytest.raises(SimulationError, match="under-reported"):
        ParallelRunner(specs, workers=1).run(2.0)
