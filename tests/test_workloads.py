"""Workload generators: routes, traffic distribution, operations model."""


import pytest

from repro.sim import DeterministicRandom
from repro.workloads.operations import (
    DEPLOY_START_MONTH,
    FULL_MIGRATION_MONTH,
    OperationalModel,
    TIMELINE_MONTHS,
    default_adoption_curve,
)
from repro.workloads.traffic import TrafficModel, empirical_cdf, percentile
from repro.workloads.updates import RouteGenerator
from repro.sim.rand import DeterministicRandom


# -- route generation ----------------------------------------------------------


def test_prefixes_distinct_and_deterministic():
    gen = RouteGenerator(DeterministicRandom(1), 64512)
    a = gen.prefixes(10_000)
    b = RouteGenerator(DeterministicRandom(1), 64512).prefixes(10_000)
    assert a == b
    assert len(set(a)) == 10_000


def test_routes_share_pooled_attributes():
    gen = RouteGenerator(DeterministicRandom(1), 64512, attr_pool_size=8)
    routes = gen.routes(100)
    distinct = {attrs.key() for _p, attrs in routes}
    assert len(distinct) <= 8


def test_routes_contain_origin_as():
    gen = RouteGenerator(DeterministicRandom(2), 64512)
    for _p, attrs in gen.routes(50):
        assert attrs.as_path.first_as() == 64512


def test_uniform_routes_single_attribute_set():
    gen = RouteGenerator(DeterministicRandom(3), 64512)
    routes = gen.uniform_routes(100)
    assert len({attrs.key() for _p, attrs in routes}) == 1


def test_routes_encode_into_updates():
    from repro.bgp.packing import pack_routes

    gen = RouteGenerator(DeterministicRandom(4), 64512, next_hop="1.2.3.4")
    messages = pack_routes(gen.routes(1000))
    assert sum(len(m.nlri) for m in messages) == 1000
    for message in messages:
        message.to_wire()  # must not raise


# -- traffic model (Fig. 7a) ---------------------------------------------------


@pytest.fixture
def traffic():
    return TrafficModel(DeterministicRandom(42).stream("traffic"))


def test_traffic_median_near_64mbps(traffic):
    samples = traffic.sample_links(20_000)
    median = percentile(samples, 0.5)
    assert 30e6 < median < 130e6  # paper: ~64 Mbps


def test_traffic_mean_tens_of_gbps(traffic):
    assert 25e9 < traffic.theoretical_mean() < 50e9  # paper: >37 Gbps
    samples = traffic.sample_links(50_000)
    mean = sum(samples) / len(samples)
    assert mean > 5e9  # sampled mean is tail-sensitive but clearly huge


def test_traffic_over_30pct_above_1gbps(traffic):
    assert traffic.theoretical_fraction_above(1e9) >= 0.28
    samples = traffic.sample_links(20_000)
    frac = sum(1 for s in samples if s > 1e9) / len(samples)
    assert frac > 0.25


def test_empirical_cdf_monotone(traffic):
    points = empirical_cdf(traffic.sample_links(100))
    values = [v for v, _f in points]
    fractions = [f for _v, f in points]
    assert values == sorted(values)
    assert fractions[-1] == pytest.approx(1.0)


def test_percentile_bounds(traffic):
    samples = [1.0, 2.0, 3.0, 4.0]
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 0.99) == 4.0
    with pytest.raises(ValueError):
        percentile([], 0.5)


# -- operations model (Fig. 7b) --------------------------------------------------


def test_adoption_curve_shape():
    curve = default_adoption_curve(6000)
    assert len(curve) == TIMELINE_MONTHS
    assert all(v == 0 for v in curve[:DEPLOY_START_MONTH])
    assert curve[DEPLOY_START_MONTH] == 100  # initial deployment
    assert curve[DEPLOY_START_MONTH + 3] == 100  # verification hold
    assert curve[FULL_MIGRATION_MONTH] == 6000
    assert curve == sorted(curve)  # monotone ramp


def test_baseline_downtime_expectation():
    model = OperationalModel(DeterministicRandom(1).stream("ops"), links=100)
    downtime = model.baseline_downtime_seconds()
    # Table 1 mix: dominated by host-network (25 s at 65%) + machine (240 s at 19%)
    assert 50 < downtime < 80


def test_monthly_impact_drops_to_zero_after_migration():
    model = OperationalModel(DeterministicRandom(2).stream("ops"), links=500)
    series = model.monthly_impacted_bytes()
    assert len(series) == TIMELINE_MONTHS
    pre = series[:DEPLOY_START_MONTH]
    assert all(v > 0 for v in pre)
    assert all(v == 0 for v in series[FULL_MIGRATION_MONTH:])


def test_pre_deployment_impact_scale():
    """Paper: ~34 TB/month impacted before TENSOR, fleet-wide."""
    model = OperationalModel(DeterministicRandom(3).stream("ops"), links=6000)
    series = model.monthly_impacted_bytes()
    pre_tb = sum(series[:DEPLOY_START_MONTH]) / DEPLOY_START_MONTH / 1e12
    assert 5 < pre_tb < 200  # order of tens of TB
