"""The examples must stay runnable — they are executable documentation."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "split_containers.py", "fleet_operations.py",
     "declarative_gateway.py"],
)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example prints its story


def test_failover_drill_runs(capsys):
    runpy.run_path(str(EXAMPLES / "failover_drill.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "host_machine" in out
    assert "transient" in out
