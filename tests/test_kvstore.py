"""KV store: data operations, calibrated latencies, replication."""

import pytest

from repro.kvstore import KeyValueStore, KvClient, KvServer, ReplicatedKvCluster
from repro.kvstore.store import operation_cost, record_count_of
from repro.sim import DeterministicRandom, Engine, Network
from repro.sim.calibration import (
    KV_READ_BASE,
    KV_READ_PER_RECORD,
    KV_WRITE_BASE,
    KV_WRITE_PER_RECORD,
)


# -- pure data structure ------------------------------------------------------


def test_set_get_delete():
    store = KeyValueStore()
    store.set("k", 1)
    assert store.get("k") == 1
    assert store.delete(["k"]) == 1
    assert store.get("k") is None
    assert store.delete(["k"]) == 0


def test_mset_mget_order():
    store = KeyValueStore()
    store.mset([("a", 1), ("b", 2)])
    assert store.mget(["b", "a", "missing"]) == [2, 1, None]


def test_scan_prefix_sorted():
    store = KeyValueStore()
    store.mset([("p:2", "x"), ("p:1", "y"), ("q:1", "z")])
    assert store.scan("p:") == [("p:1", "y"), ("p:2", "x")]


def test_delete_prefix():
    store = KeyValueStore()
    store.mset([("p:1", 1), ("p:2", 2), ("q:1", 3)])
    assert store.delete_prefix("p:") == 2
    assert len(store) == 1


def test_size_bytes_accounts_keys_and_values():
    store = KeyValueStore()
    store.set("k" * 90, b"v" * 4096)
    assert store.size_bytes() == 90 + 4096


def test_snapshot_and_load_are_independent():
    store = KeyValueStore()
    store.set("a", 1)
    snap = store.snapshot()
    store.set("b", 2)
    other = KeyValueStore()
    other.load(snap)
    assert "b" not in other and other.get("a") == 1


# -- cost model ---------------------------------------------------------------


def test_operation_cost_single_read_under_500us():
    assert operation_cost("get", 1) < 500e-6


def test_operation_cost_single_write_about_1ms():
    assert 0.8e-3 < operation_cost("set", 1) < 1.2e-3


def test_write_read_ratio_about_2_5x():
    ratio = operation_cost("mset", 1000) / operation_cost("mget", 1000)
    assert 2.0 < ratio < 3.0


def test_batch_amortization():
    per_record_single = operation_cost("get", 1)
    per_record_batch = operation_cost("mget", 10_000) / 10_000
    assert per_record_batch < per_record_single / 5


def test_record_count_of():
    assert record_count_of("mget", {"keys": ["a", "b"]}) == 2
    assert record_count_of("mset", {"items": [("a", 1)]}) == 1
    assert record_count_of("delete", {"keys": ["a", "b", "c"]}) == 3
    assert record_count_of("get", {"key": "a"}) == 1


# -- server/client over the network -------------------------------------------


@pytest.fixture
def kv(engine):
    network = Network(engine, DeterministicRandom(2))
    network.enable_fabric(latency=50e-6)
    client_host = network.add_host("c", "1.1.1.1")
    server_host = network.add_host("s", "1.1.1.2")
    server = KvServer(engine, server_host)
    client = KvClient(engine, client_host, "1.1.1.2")
    return engine, server, client


def test_client_set_then_get(kv):
    engine, server, client = kv
    out = []
    client.set("k", b"value", on_done=lambda: client.get("k", on_done=out.append))
    engine.run_until_idle()
    assert out == [b"value"]


def test_single_read_latency_calibrated(kv):
    engine, server, client = kv
    client.set("k", b"v", on_done=lambda: None)
    engine.run_until_idle()
    start = engine.now
    done = []
    client.get("k", on_done=lambda v: done.append(engine.now - start))
    engine.run_until_idle()
    assert done[0] < 500e-6  # "less than 500 us"


def test_single_write_latency_calibrated(kv):
    engine, server, client = kv
    start = engine.now
    done = []
    client.set("k", b"v" * 4096, on_done=lambda: done.append(engine.now - start))
    engine.run_until_idle()
    assert 0.8e-3 < done[0] < 1.3e-3  # "roughly 1 ms"


def test_batched_10k_latencies_match_fig5b(kv):
    engine, server, client = kv
    items = [(f"k{i}", b"v") for i in range(10_000)]
    writes, reads = [], []
    start = engine.now
    client.mset(items, on_done=lambda: writes.append(engine.now - start))
    engine.run_until_idle()
    start = engine.now
    client.mget([k for k, _v in items], on_done=lambda vals: reads.append(engine.now - start))
    engine.run_until_idle()
    assert 0.4 < writes[0] < 0.6  # "~500 ms for 10K"
    assert 0.15 < reads[0] < 0.25  # "200 ms for up to 10K records"


def test_large_batches_serialize_behind_one_cpu(kv):
    """Per-record work is real CPU: two concurrent 10K-record writes take
    nearly twice as long as one, while small writes overlap freely."""
    engine, server, client = kv
    items = [(f"k{i}", b"v") for i in range(10_000)]
    done_times = []
    client.mset(items, on_done=lambda: done_times.append(engine.now))
    client.mset(items, on_done=lambda: done_times.append(engine.now))
    engine.run_until_idle()
    assert done_times[1] - done_times[0] > 0.3  # ~480 ms of CPU each


def test_small_writes_overlap_across_clients(kv):
    engine, server, client = kv
    done_times = []
    for i in range(3):
        client.set(f"k{i}", b"v", on_done=lambda: done_times.append(engine.now))
    engine.run_until_idle()
    # the ~0.8 ms protocol latency overlaps; only ~70 us of CPU serializes
    assert done_times[2] - done_times[0] < 0.5e-3


def test_failed_server_times_out(kv):
    engine, server, client = kv
    server.fail()
    outcomes = []
    client.set("k", b"v", on_done=lambda: outcomes.append("ok"),
               on_error=lambda m, cause: outcomes.append(cause), timeout=0.3)
    engine.run_until_idle()
    assert outcomes == ["timeout"]


def test_recovered_server_serves_again(kv):
    engine, server, client = kv
    server.fail()
    server.recover()
    out = []
    client.ping(on_done=lambda: out.append("pong"))
    engine.run_until_idle()
    assert out == ["pong"]


def test_scan_rpc(kv):
    engine, server, client = kv
    client.mset([("t:a", 1), ("t:b", 2), ("u:c", 3)], on_done=lambda: None)
    engine.run_until_idle()
    out = []
    client.scan("t:", on_done=out.append)
    engine.run_until_idle()
    assert out == [[("t:a", 1), ("t:b", 2)]]


# -- replication --------------------------------------------------------------


@pytest.fixture
def cluster(engine):
    network = Network(engine, DeterministicRandom(3))
    network.enable_fabric(latency=50e-6)
    client_host = network.add_host("c", "1.1.1.1")
    primary_host = network.add_host("p", "1.1.1.2")
    replica_host = network.add_host("r", "1.1.1.3")
    cluster = ReplicatedKvCluster(engine, primary_host, replica_host)
    client = KvClient(engine, client_host, cluster.primary_addr)
    return engine, cluster, client


def test_sync_replication_reaches_replica(cluster):
    engine, cluster, client = cluster
    client.set("k", 42, on_done=lambda: None)
    engine.run_until_idle()
    assert cluster.replica.store.get("k") == 42


def test_failover_promotes_replica_with_data(cluster):
    engine, cluster, client = cluster
    client.mset([(f"k{i}", i) for i in range(100)], on_done=lambda: None)
    engine.run_until_idle()
    cluster.fail_primary()
    new_addr = cluster.promote_replica()
    client2_host = cluster.primary.host  # reuse any live host for the client
    out = []
    probe = KvClient(engine, client2_host, new_addr)
    probe.get("k50", on_done=out.append)
    engine.run_until_idle()
    assert out == [50]
    assert cluster.failovers == 1


def test_resync_replica_bulk_copies(cluster):
    engine, cluster, client = cluster
    client.set("k", "v", on_done=lambda: None)
    engine.run_until_idle()
    cluster.replica.store.load({})  # wipe the replica
    cluster.resync_replica()  # timed copy: completes after the engine runs
    engine.run_until_idle()
    assert cluster.replica.store.get("k") == "v"
