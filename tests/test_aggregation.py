"""DRAGON-style aggregation (DESIGN.md §14): snapshot collapse/expand,
pipeline integration, and export aggregation on a live speaker mesh."""

import pytest

from repro.bgp import BgpSpeaker, LocRib, PeerConfig, Prefix, SpeakerConfig
from repro.bgp.aggregation import (
    ExportAggregator,
    aggregate_root,
    collapse_prefix_entries,
    expand_snapshot_entries,
)
from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.rib import AdjRibOut, Route
from repro.core.recovery import BackupRecovery
from repro.core.replication import ReplicationPipeline
from repro.kvstore import KvClient, KvServer
from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack


def _attrs(**overrides):
    base = dict(next_hop="10.0.0.1", as_path=AsPath.sequence(64496), local_pref=100)
    base.update(overrides)
    return PathAttributes(**base)


def _fill(rib, prefixes, attrs=None, peer="p1"):
    for prefix in prefixes:
        rib.offer(Route(prefix, attrs or _attrs(), peer, "ebgp"))


def _block(base, count, length=24):
    stride = 1 << (32 - length)
    return [Prefix(base + i * stride, length) for i in range(count)]


def _record_key(rec):
    return (Prefix.parse(rec["prefix"]), str(rec["peer_id"]),
            rec["source_kind"], rec["attributes"])


def _plain_export(rib, prefixes):
    records = []
    for prefix in prefixes:
        records.extend(rib.export_prefix_entries(prefix))
    return sorted(records, key=_record_key)


def _round_trip(rib, prefixes):
    encoded = collapse_prefix_entries(rib, prefixes)
    expanded = sorted(expand_snapshot_entries(encoded), key=_record_key)
    assert expanded == _plain_export(rib, prefixes)
    return encoded


# ---------------------------------------------------------------------------
# snapshot collapse/expand
# ---------------------------------------------------------------------------

def test_complete_uniform_block_collapses_to_one_record():
    rib = LocRib()
    members = _block(Prefix.parse("10.1.0.0/22").value, 4)
    _fill(rib, members)
    encoded = _round_trip(rib, members)
    assert len(encoded) == 1
    assert encoded[0]["aggregate"] == "10.1.0.0/22"
    assert encoded[0]["member_length"] == 24


def test_multi_level_collapse_spans_intermediate_lengths():
    # 16 x /24 under a /20: merging must walk through /23, /22, /21 —
    # levels that did not exist in the input.
    rib = LocRib()
    members = _block(Prefix.parse("172.16.16.0/20").value, 16)
    _fill(rib, members)
    encoded = _round_trip(rib, members)
    assert len(encoded) == 1
    assert encoded[0]["aggregate"] == "172.16.16.0/20"


def test_missing_sibling_blocks_collapse():
    rib = LocRib()
    members = _block(Prefix.parse("10.1.0.0/22").value, 4)
    members.pop(1)  # 10.1.1.0/24 absent: left /23 incomplete
    _fill(rib, members)
    encoded = _round_trip(rib, members)
    # 10.1.2.0/24 + 10.1.3.0/24 still merge into 10.1.2.0/23.
    aggregates = [rec for rec in encoded if "aggregate" in rec]
    plains = [rec for rec in encoded if "prefix" in rec]
    assert [rec["aggregate"] for rec in aggregates] == ["10.1.2.0/23"]
    assert [rec["prefix"] for rec in plains] == ["10.1.0.0/24"]


def test_divergent_attributes_block_collapse():
    rib = LocRib()
    members = _block(Prefix.parse("10.1.0.0/22").value, 4)
    _fill(rib, members[:3])
    _fill(rib, members[3:], attrs=_attrs(med=50))
    encoded = _round_trip(rib, members)
    aggregates = sorted(rec["aggregate"] for rec in encoded
                        if "aggregate" in rec)
    assert aggregates == ["10.1.0.0/23"]  # the divergent half stays split


def test_multi_candidate_and_default_route_pass_through():
    rib = LocRib()
    members = _block(Prefix.parse("10.1.0.0/23").value, 2)
    _fill(rib, members)
    rib.offer(Route(members[0], _attrs(local_pref=50), "p2", "ebgp"))
    default = Prefix(0, 0)
    rib.offer(Route(default, _attrs(), "p1", "ebgp"))
    encoded = _round_trip(rib, members + [default])
    # the two-candidate prefix and the default route forbid any merge
    assert all("prefix" in rec for rec in encoded)
    assert len(encoded) == 4  # 2 candidates + sibling + default


def test_collapse_differs_by_peer_signature():
    rib = LocRib()
    members = _block(Prefix.parse("10.1.0.0/23").value, 2)
    rib.offer(Route(members[0], _attrs(), "p1", "ebgp"))
    rib.offer(Route(members[1], _attrs(), "p2", "ebgp"))
    encoded = _round_trip(rib, members)
    assert all("prefix" in rec for rec in encoded)


def test_collapse_fuzz_round_trip():
    rng = DeterministicRandom(71).stream("aggfuzz")
    for _trial in range(25):
        rib = LocRib()
        prefixes = set()
        for _ in range(rng.randrange(1, 40)):
            length = rng.choice([0, 8, 16, 22, 23, 24, 24, 24, 25, 32])
            value = (rng.randrange(0, 1 << 8) << 24) | (
                rng.randrange(0, 1 << 10) << 8)
            prefix = Prefix(value & (((1 << length) - 1) << (32 - length))
                            if length else 0, length)
            prefixes.add(prefix)
            attrs = _attrs(med=rng.choice([0, 0, 0, 50]))
            peer = rng.choice(["p1", "p1", "p2"])
            rib.offer(Route(prefix, attrs, peer, "ebgp"))
            if rng.random() < 0.2:
                rib.offer(Route(prefix, _attrs(local_pref=90), "p3", "ebgp"))
        _round_trip(rib, sorted(prefixes))


def test_aggregate_root_bucketing():
    assert aggregate_root(Prefix.parse("10.1.2.0/24")) == Prefix.parse("10.1.0.0/16")
    assert aggregate_root(Prefix.parse("10.0.0.0/8")) == Prefix.parse("10.0.0.0/8")
    assert aggregate_root(Prefix(0, 0)) == Prefix(0, 0)


# ---------------------------------------------------------------------------
# pipeline integration: aggregated snapshots shrink and round-trip
# ---------------------------------------------------------------------------

@pytest.fixture
def kv_env(engine):
    network = Network(engine, DeterministicRandom(4))
    network.enable_fabric(latency=5e-5)
    client_host = network.add_host("c", "1.1.1.1")
    server_host = network.add_host("s", "1.1.1.2")
    server = KvServer(engine, server_host)
    fast = KvClient(engine, client_host, "1.1.1.2")
    bulk = KvClient(engine, client_host, "1.1.1.2")
    return engine, server, fast, bulk


def _aggregatable_rib(blocks=8, members=16):
    rib = LocRib()
    for block in range(blocks):
        base = Prefix.parse(f"10.{block}.0.0/16").value
        _fill(rib, _block(base, members))
    return rib


def test_aggregated_compaction_round_trips_and_shrinks(kv_env):
    engine, server, fast, bulk = kv_env
    pipeline = ReplicationPipeline("pair0", fast, bulk,
                                   aggregate_snapshots=True)
    rib = _aggregatable_rib()
    pipeline.compact("v1", rib)
    engine.run_until_idle()
    assert pipeline.snapshot_entries_raw == 8 * 16
    # every block collapses: written entries shrink well past the §14
    # 20% target on this fully-aggregatable table
    assert pipeline.snapshot_entries_written <= pipeline.snapshot_entries_raw // 2
    recovery = BackupRecovery(engine, fast, "pair0")
    states = []
    recovery.load(states.append)
    engine.run_until_idle()
    rebuilt = states[0].rebuild_loc_rib("v1")
    assert rebuilt.export_entries() == rib.export_entries()


def test_aggregated_incremental_compaction_stays_correct(kv_env):
    engine, server, fast, bulk = kv_env
    pipeline = ReplicationPipeline("pair0", fast, bulk,
                                   aggregate_snapshots=True)
    rib = _aggregatable_rib(blocks=4)
    pipeline.compact("v1", rib)
    engine.run_until_idle()
    # Punch a divergence into one block, then touch another block's
    # member: only dirty chunks rewrite, and recovery still matches.
    hole = Prefix.parse("10.2.3.0/24")
    rib.offer(Route(hole, _attrs(med=99), "p1", "ebgp"))
    rib.retract(Prefix.parse("10.1.5.0/24"), "p1")
    pipeline.compact("v1", rib)
    engine.run_until_idle()
    assert pipeline.incremental_compactions == 1
    recovery = BackupRecovery(engine, fast, "pair0")
    states = []
    recovery.load(states.append)
    engine.run_until_idle()
    rebuilt = states[0].rebuild_loc_rib("v1")
    assert rebuilt.export_entries() == rib.export_entries()
    assert rebuilt.best(hole).attributes.med == 99


def test_unaggregated_pipeline_counts_match():
    engine = Engine()
    network = Network(engine, DeterministicRandom(4))
    network.enable_fabric(latency=5e-5)
    server = KvServer(engine, network.add_host("s", "1.1.1.2"))
    client_host = network.add_host("c", "1.1.1.1")
    fast = KvClient(engine, client_host, "1.1.1.2")
    bulk = KvClient(engine, client_host, "1.1.1.2")
    pipeline = ReplicationPipeline("pair0", fast, bulk)
    rib = _aggregatable_rib(blocks=2)
    pipeline.compact("v1", rib)
    engine.run_until_idle()
    # default-off: byte-for-byte the plain per-prefix snapshot
    chunks = server.store.scan("tensor:pair0:rib:v1:s:")
    assert sum(len(entries) for _k, entries in chunks) == 32
    assert all("prefix" in rec for _k, entries in chunks for rec in entries)


# ---------------------------------------------------------------------------
# export aggregation: unit-level transform_table
# ---------------------------------------------------------------------------

class _StubSession:
    def __init__(self, peer_id="stub-peer", source_kind="ebgp"):
        self.peer_id = peer_id
        self.source_kind = source_kind
        self.adj_rib_out = AdjRibOut(peer_id)


def test_transform_table_collapses_uniform_members():
    rib = LocRib()
    aggregate = Prefix.parse("10.1.0.0/22")
    members = _block(aggregate.value, 4)
    _fill(rib, members)
    aggregator = ExportAggregator("spk", [aggregate])
    session = _StubSession()
    routes = [(route.prefix, route.attributes) for route in rib.best_routes()]
    out = aggregator.transform_table(rib, session, routes)
    assert [prefix for prefix, _ in out] == [aggregate]
    assert aggregator.aggregates_advertised == 1


def test_transform_table_punches_hole_for_divergent_member():
    rib = LocRib()
    aggregate = Prefix.parse("10.1.0.0/22")
    members = _block(aggregate.value, 4)
    _fill(rib, members[:3])
    divergent = _attrs(med=50)
    _fill(rib, members[3:], attrs=divergent)
    aggregator = ExportAggregator("spk", [aggregate])
    out = aggregator.transform_table(rib, _StubSession(), [
        (route.prefix, route.attributes) for route in rib.best_routes()
    ])
    exported = dict(out)
    assert set(exported) == {aggregate, members[3]}
    assert exported[members[3]] == divergent
    assert exported[aggregate] == _attrs()  # the uniform majority's attrs
    assert aggregator.holes_punched == 1


def test_transform_table_inert_below_min_members():
    rib = LocRib()
    aggregate = Prefix.parse("10.1.0.0/22")
    only = Prefix.parse("10.1.2.0/24")
    _fill(rib, [only])
    aggregator = ExportAggregator("spk", [aggregate])
    out = aggregator.transform_table(rib, _StubSession(), [
        (route.prefix, route.attributes) for route in rib.best_routes()
    ])
    assert [prefix for prefix, _ in out] == [only]
    assert aggregator.aggregates_advertised == 0


def test_transform_table_inert_when_real_aggregate_route_exists():
    rib = LocRib()
    aggregate = Prefix.parse("10.1.0.0/22")
    members = _block(aggregate.value, 4)
    _fill(rib, members)
    real = _attrs(local_pref=200)
    rib.offer(Route(aggregate, real, "p7", "ebgp"))
    aggregator = ExportAggregator("spk", [aggregate])
    out = aggregator.transform_table(rib, _StubSession(), [
        (route.prefix, route.attributes) for route in rib.best_routes()
    ])
    exported = dict(out)
    # the real /22 route passes through; members export individually
    assert set(exported) == {aggregate} | set(members)
    assert exported[aggregate] == real


# ---------------------------------------------------------------------------
# export aggregation: live speaker mesh (delta path)
# ---------------------------------------------------------------------------

def _mesh(engine, network, specs):
    network.enable_fabric(latency=5e-5)
    speakers = {}
    for name, (addr, asn, aggregates) in specs.items():
        host = network.add_host(name, addr)
        speakers[name] = BgpSpeaker(
            engine, TcpStack(engine, host),
            SpeakerConfig(name, asn, addr, aggregates=aggregates),
        )
        speakers[name].add_vrf("v")
    return speakers


def _connect(engine, speakers, active, passive):
    passive_speaker = speakers[passive]
    active_speaker = speakers[active]
    passive_speaker.add_peer(PeerConfig(
        active_speaker.stack.host.address,
        active_speaker.config.local_as, vrf_name="v", mode="passive"))
    return active_speaker.add_peer(PeerConfig(
        passive_speaker.stack.host.address,
        passive_speaker.config.local_as, vrf_name="v", mode="active"))


@pytest.fixture
def agg_mesh(engine, network):
    """src --eBGP--> agg (aggregates 10.1.0.0/22) --eBGP--> dst."""
    speakers = _mesh(engine, network, {
        "src": ("10.0.0.1", 64496, ()),
        "agg": ("10.0.0.2", 65001, (Prefix.parse("10.1.0.0/22"),)),
        "dst": ("10.0.0.3", 65010, ()),
    })
    _connect(engine, speakers, "src", "agg")
    _connect(engine, speakers, "dst", "agg")
    for speaker in speakers.values():
        speaker.start()
    engine.advance(3.0)
    return speakers


AGGREGATE = Prefix.parse("10.1.0.0/22")
MEMBERS = _block(AGGREGATE.value, 4)


def _originate_members(engine, speakers, members=MEMBERS, med=None):
    for prefix in members:
        attrs = _attrs() if med is None else _attrs(med=med)
        speakers["src"].originate("v", prefix, attrs)
    engine.advance(3.0)


def test_uniform_members_export_as_one_aggregate(agg_mesh, engine):
    speakers = agg_mesh
    _originate_members(engine, speakers)
    dst_rib = speakers["dst"].vrfs["v"].loc_rib
    assert dst_rib.best(AGGREGATE) is not None
    for member in MEMBERS:
        assert dst_rib.best(member) is None
    # LPM at the receiver still resolves every member destination
    for member in MEMBERS:
        route = dst_rib.lookup(Prefix(member.value, 32))
        assert route is not None and route.prefix == AGGREGATE
    # the aggregate is an export-side artifact: agg's own Loc-RIB (and
    # hence rib_digest / the convergence oracles) never contains it
    assert speakers["agg"].vrfs["v"].loc_rib.best(AGGREGATE) is None
    # ...and the upstream peer is not told about its own members' cover
    assert speakers["src"].vrfs["v"].loc_rib.best(AGGREGATE) is None


def test_divergent_member_punches_hole(agg_mesh, engine):
    speakers = agg_mesh
    _originate_members(engine, speakers)
    speakers["src"].originate("v", MEMBERS[2], _attrs(med=50))
    engine.advance(3.0)
    dst_rib = speakers["dst"].vrfs["v"].loc_rib
    assert dst_rib.best(AGGREGATE) is not None
    assert dst_rib.best(MEMBERS[2]) is not None  # the hole
    for member in (MEMBERS[0], MEMBERS[1], MEMBERS[3]):
        assert dst_rib.best(member) is None
    # LPM: the divergent destination hits the hole, others the aggregate
    assert dst_rib.lookup(Prefix(MEMBERS[2].value, 32)).prefix == MEMBERS[2]
    assert dst_rib.lookup(Prefix(MEMBERS[1].value, 32)).prefix == AGGREGATE
    assert speakers["agg"].aggregator.holes_punched >= 1


def test_hole_heals_when_member_reconverges(agg_mesh, engine):
    speakers = agg_mesh
    _originate_members(engine, speakers)
    speakers["src"].originate("v", MEMBERS[2], _attrs(med=50))
    engine.advance(3.0)
    speakers["src"].originate("v", MEMBERS[2], _attrs())
    engine.advance(3.0)
    dst_rib = speakers["dst"].vrfs["v"].loc_rib
    assert dst_rib.best(AGGREGATE) is not None
    assert dst_rib.best(MEMBERS[2]) is None  # hole withdrawn


def test_completeness_break_withdraws_aggregate(agg_mesh, engine):
    speakers = agg_mesh
    _originate_members(engine, speakers)
    for member in MEMBERS[1:]:
        speakers["src"].withdraw_originated("v", member)
    engine.advance(3.0)
    dst_rib = speakers["dst"].vrfs["v"].loc_rib
    # one member left (< min_members): aggregate gone, member re-exported
    assert dst_rib.best(AGGREGATE) is None
    assert dst_rib.best(MEMBERS[0]) is not None
    for member in MEMBERS[1:]:
        assert dst_rib.best(member) is None


def test_all_members_withdrawn_leaves_clean_table(agg_mesh, engine):
    speakers = agg_mesh
    _originate_members(engine, speakers)
    for member in MEMBERS:
        speakers["src"].withdraw_originated("v", member)
    engine.advance(3.0)
    dst_rib = speakers["dst"].vrfs["v"].loc_rib
    assert dst_rib.best(AGGREGATE) is None
    for member in MEMBERS:
        assert dst_rib.best(member) is None
    assert len(dst_rib) == 0


def test_session_establishment_advertises_aggregated_table(engine, network):
    # routes first, session after: the full-table path (transform_table)
    speakers = _mesh(engine, network, {
        "src": ("10.0.0.1", 64496, ()),
        "agg": ("10.0.0.2", 65001, (AGGREGATE,)),
        "late": ("10.0.0.4", 65020, ()),
    })
    _connect(engine, speakers, "src", "agg")
    _connect(engine, speakers, "late", "agg")
    speakers["src"].start()
    speakers["agg"].start()
    engine.advance(3.0)
    _originate_members(engine, speakers)
    speakers["late"].start()
    engine.advance(3.0)
    late_rib = speakers["late"].vrfs["v"].loc_rib
    assert late_rib.best(AGGREGATE) is not None
    for member in MEMBERS:
        assert late_rib.best(member) is None
