"""Unit tests for TCP connection establishment, transfer, teardown."""

import pytest

from repro.tcpsim import TcpStack
from repro.tcpsim.state import TcpState

from conftest import make_tcp_pair


def test_three_way_handshake(engine, two_stacks):
    sa, sb = two_stacks
    client, accepted, _ = make_tcp_pair(engine, sa, sb)
    assert client.state is TcpState.ESTABLISHED
    assert accepted and accepted[0].state is TcpState.ESTABLISHED


def test_isn_negotiation_symmetric(engine, two_stacks):
    sa, sb = two_stacks
    client, accepted, _ = make_tcp_pair(engine, sa, sb)
    server = accepted[0]
    assert client.irs == server.iss
    assert server.irs == client.iss
    assert client.snd_una == client.iss + 1
    assert client.rcv_nxt == server.iss + 1


def test_small_payload_delivery(engine, two_stacks):
    sa, sb = two_stacks
    _client, _accepted, received = make_tcp_pair(engine, sa, sb, payload=b"hello bgp")
    assert bytes(received) == b"hello bgp"


def test_large_transfer_exact_bytes(engine, two_stacks):
    sa, sb = two_stacks
    payload = bytes(i % 251 for i in range(300_000))
    _client, _accepted, received = make_tcp_pair(engine, sa, sb, payload=payload)
    engine.advance(5.0)
    assert bytes(received) == payload


def test_bidirectional_transfer(engine, two_stacks):
    sa, sb = two_stacks
    to_server = b"request" * 100
    to_client = b"response" * 100
    got_client = bytearray()
    client, accepted, got_server = make_tcp_pair(engine, sa, sb, payload=to_server)
    client.on_data = lambda _c, d: got_client.extend(d)
    accepted[0].send(to_client)
    engine.advance(2.0)
    assert bytes(got_server) == to_server
    assert bytes(got_client) == to_client


def test_mss_splits_segments(engine, two_stacks):
    sa, sb = two_stacks
    payload = b"x" * (1460 * 3 + 10)
    client, _accepted, received = make_tcp_pair(engine, sa, sb, payload=payload)
    engine.advance(2.0)
    assert bytes(received) == payload
    assert client.segments_sent >= 4 + 1  # SYN + >=4 data segments


def test_mss_limit_caps_segment_size(engine, two_stacks):
    sa, sb = two_stacks
    accepted = []
    sizes = []
    def on_accept(conn):
        accepted.append(conn)
        conn.on_data = lambda _c, d: sizes.append(len(d))
    sb.listen(7000, on_accept)
    client = sa.connect("10.0.0.2", 7000)
    client.mss_limit = 100
    engine.advance(1.0)
    client.send(b"y" * 1000)
    engine.advance(1.0)
    assert sum(sizes) == 1000
    # deliveries may coalesce contiguous out-of-order absorptions, but the
    # wire segments were capped: at least 10 segments were sent
    assert client.segments_sent >= 10


def test_cumulative_bytes_received_tracks_stream(engine, two_stacks):
    sa, sb = two_stacks
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"a" * 999)
    engine.advance(1.0)
    assert accepted[0].cumulative_bytes_received == 999
    assert client.cumulative_bytes_received == 0


def test_send_on_unestablished_connection_raises(engine, two_stacks):
    sa, _sb = two_stacks
    conn = sa.connect("10.0.0.2", 1)  # nothing listening
    with pytest.raises(ConnectionError):
        conn.send(b"x")


def test_connect_to_closed_port_resets(engine, two_stacks):
    sa, sb = two_stacks
    resets = []
    conn = sa.connect("10.0.0.2", 4444)
    conn.on_reset = lambda _c, reason: resets.append(reason)
    engine.advance(1.0)
    assert resets == ["rst"]
    assert conn.state is TcpState.CLOSED


def test_orderly_close_fin_handshake(engine, two_stacks):
    sa, sb = two_stacks
    closed = []
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"bye")
    server = accepted[0]
    server.on_close = lambda _c: closed.append("server")
    client.on_close = lambda _c: closed.append("client")
    client.close()
    engine.advance(1.0)
    assert "server" in closed  # server saw FIN -> CLOSE_WAIT
    assert server.state is TcpState.CLOSE_WAIT
    server.close()
    engine.advance(5.0)
    assert client.state is TcpState.CLOSED
    assert server.state is TcpState.CLOSED


def test_close_flushes_pending_data_first(engine, two_stacks):
    sa, sb = two_stacks
    payload = b"z" * 100_000
    client, _accepted, received = make_tcp_pair(engine, sa, sb)
    client.send(payload)
    client.close()  # FIN must follow all data
    engine.advance(5.0)
    assert bytes(received) == payload


def test_abort_sends_rst(engine, two_stacks):
    sa, sb = two_stacks
    resets = []
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"x")
    accepted[0].on_reset = lambda _c, reason: resets.append(reason)
    client.abort()
    engine.advance(1.0)
    assert resets == ["rst"]


def test_simultaneous_close(engine, two_stacks):
    sa, sb = two_stacks
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"x")
    server = accepted[0]
    client.close()
    server.close()
    engine.advance(5.0)
    assert client.state is TcpState.CLOSED
    assert server.state is TcpState.CLOSED


def test_many_connections_demuxed_independently(engine, two_stacks):
    sa, sb = two_stacks
    streams = {}

    def on_accept(conn):
        streams[conn.remote_port] = bytearray()
        conn.on_data = lambda c, d: streams[c.remote_port].extend(d)

    sb.listen(7000, on_accept)
    clients = []
    for i in range(10):
        conn = sa.connect("10.0.0.2", 7000)
        conn.on_established = lambda c, i=i: c.send(bytes([i]) * 100)
        clients.append(conn)
    engine.advance(2.0)
    assert len(streams) == 10
    for conn in clients:
        data = streams[conn.local_port]
        assert len(data) == 100
        assert len(set(data)) == 1


def test_flow_control_limits_inflight(engine, two_stacks):
    sa, sb = two_stacks
    client, accepted, _ = make_tcp_pair(engine, sa, sb)
    client.snd_wnd = 5000  # pretend the peer advertised a tiny window
    client.send(b"w" * 50_000)
    assert client.bytes_in_flight <= 5000


def test_rtt_estimation_converges(engine, two_stacks):
    sa, sb = two_stacks
    client, _accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"x" * 20_000)
    engine.advance(2.0)
    assert client.srtt is not None
    assert 0 < client.srtt < 0.01  # near the 200 us RTT + pacing


def test_stack_destroy_silences_everything(engine, two_stacks):
    sa, sb = two_stacks
    client, accepted, _ = make_tcp_pair(engine, sa, sb, payload=b"x")
    sb.destroy()
    assert sb.connections() == []
    client.send(b"more")
    engine.advance(3.0)
    # no replies, client retransmits
    assert client.retransmissions > 0


def test_listener_accept_callback_runs_once_per_connection(engine, two_stacks):
    sa, sb = two_stacks
    count = []
    sb.listen(7000, lambda conn: count.append(conn))
    sa.connect("10.0.0.2", 7000)
    sa.connect("10.0.0.2", 7000)
    engine.advance(1.0)
    assert len(count) == 2


def test_established_callback_fires(engine, two_stacks):
    sa, sb = two_stacks
    sb.listen(7000, lambda conn: None)
    established = []
    sa.connect("10.0.0.2", 7000, on_established=lambda c: established.append(c))
    engine.advance(1.0)
    assert len(established) == 1
