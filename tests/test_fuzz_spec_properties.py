"""FuzzSpec property tests (DESIGN.md §13, S3).

Three properties over the whole generable spec space:

1. serialize/deserialize round-trips exactly;
2. every generated spec materializes into a valid system — every
   neighbor has an established session with its assigned pair, every
   VRF named in the spec exists on exactly one gateway speaker, and no
   pair hosts a VRF the spec never named (no dangling peers/VRFs);
3. generation is bit-identical for equal seeds (the corpus and repro
   scripts depend on this).

Hypothesis drives seed choice when available (``derandomize=True``
keeps the corpus stable); a ``DeterministicRandom``-seeded fallback
covers the same properties without it.
"""

import pytest

from repro.fuzz.build import build_fuzz_system
from repro.fuzz.spec import (
    FuzzSpec,
    generate_fuzz_spec,
    mutate_fuzz_spec,
    validate_fuzz_spec,
)
from repro.sim import DeterministicRandom

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the image bakes hypothesis in
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

seeds = st.integers(min_value=0, max_value=2**16) if HAVE_HYPOTHESIS else None


def _assert_roundtrip(seed):
    spec = generate_fuzz_spec(seed)
    clone = FuzzSpec.from_dict(spec.to_dict())
    assert clone.to_dict() == spec.to_dict()
    # the copy is deep enough to mutate freely
    copy = spec.copy()
    copy.injections.clear()
    copy.neighbors[0]["mrai"] = 99.0
    assert spec.injections
    assert spec.neighbors[0]["mrai"] != 99.0


def _assert_deterministic(seed):
    assert (generate_fuzz_spec(seed).to_dict()
            == generate_fuzz_spec(seed).to_dict())
    spec = generate_fuzz_spec(seed)
    assert (mutate_fuzz_spec(spec, seed + 1).to_dict()
            == mutate_fuzz_spec(spec, seed + 1).to_dict())


def _assert_builds_valid_system(seed):
    spec = generate_fuzz_spec(seed)
    validate_fuzz_spec(spec)
    system, pairs, remotes = build_fuzz_system(spec)
    # every neighbor's session established against its assigned pair
    assert len(remotes) == len(spec.neighbors)
    for remote, session in remotes:
        assert session.established, f"{remote.name} failed to establish"
    # no dangling VRFs: each spec VRF lives on exactly one gateway
    # speaker, and no pair hosts a VRF the spec never named
    spec_vrfs = {neighbor["vrf"] for neighbor in spec.neighbors}
    homes = {}
    for pair, members in pairs:
        for vrf_name in pair.speaker.vrfs:
            assert vrf_name in spec_vrfs, f"dangling VRF {vrf_name}"
            assert homes.setdefault(vrf_name, pair.name) == pair.name
    assert set(homes) == spec_vrfs
    # no dangling peers: each pair's configured neighbors are exactly
    # its split-plan members
    for pair, members in pairs:
        configured = {spec_n.remote_addr for spec_n in pair.neighbors}
        assert configured == {spec.remote_addr(i) for i in members}


if HAVE_HYPOTHESIS:

    @needs_hypothesis
    @settings(derandomize=True, max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_spec_roundtrips_hypothesis(seed):
        _assert_roundtrip(seed)

    @needs_hypothesis
    @settings(derandomize=True, max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_generation_is_bit_identical_hypothesis(seed):
        _assert_deterministic(seed)

    @needs_hypothesis
    @settings(derandomize=True, max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_spec_builds_valid_system_hypothesis(seed):
        _assert_builds_valid_system(seed)


def test_spec_roundtrips_fallback():
    rng = DeterministicRandom(7).stream("fuzz-prop")
    for _ in range(20):
        _assert_roundtrip(rng.randint(0, 2**16))


def test_generation_is_bit_identical_fallback():
    rng = DeterministicRandom(8).stream("fuzz-prop")
    for _ in range(20):
        _assert_deterministic(rng.randint(0, 2**16))


def test_spec_builds_valid_system_fallback():
    rng = DeterministicRandom(9).stream("fuzz-prop")
    for _ in range(3):
        _assert_builds_valid_system(rng.randint(0, 200))


def test_mutations_stay_valid():
    """Every mutation op either preserves the composition rules or
    falls back to fresh generation — never an invalid spec."""
    rng = DeterministicRandom(10).stream("fuzz-prop")
    spec = generate_fuzz_spec(0)
    for _ in range(40):
        spec = mutate_fuzz_spec(spec, rng.randint(0, 2**16))
        validate_fuzz_spec(spec)
