"""Every registered failure scenario, judged by the oracle suite.

The scenario registry (Table 1 plus the soft classes) is the chaos
engine's vocabulary; this file runs each entry in isolation under the
same continuous oracles a chaos schedule uses, so a scenario that breaks
an NSR invariant is caught here with a one-failure trace before any
randomized composition ever hits it.

Also the regression net for :meth:`FailureInjector.stamp_records`: each
controller record must be stamped with the ground truth of the failure
it actually recovered from, even under repeated injections on the same
target and unrelated near-in-time injections.
"""

import pytest

from repro.failures import FailureInjector, OracleSuite
from repro.failures.scenarios import SCENARIOS, scenario, scenarios_by_severity
from repro.sim import DeterministicRandom
from repro.workloads.updates import RouteGenerator

from conftest import build_tensor_fixture

CHECK_QUANTUM = 0.05


def _oracle_fixture(seed, routes=150):
    """A converged system plus an armed OracleSuite that knows the
    workload intent (the originated prefixes)."""
    system, pair, remotes = build_tensor_fixture(seed=seed, routes=0)
    suite = OracleSuite(system, pair, remotes)
    rand = DeterministicRandom(seed)
    gen = RouteGenerator(rand.fork("workload"), 64512, next_hop="192.0.2.1")
    generated = gen.routes(routes)
    for index, (remote, session) in enumerate(remotes):
        remote.speaker.originate_many(session.config.vrf_name, generated)
        remote.speaker.readvertise(session)
        suite.note_originate(index, [p for p, _a in generated])
    system.engine.advance(5.0)
    suite.arm()
    return system, pair, remotes, suite


def _target_for(entry, system, pair):
    if entry.target_kind == "pair":
        return pair
    if entry.target_kind == "machine":
        return pair.active_machine
    return None  # "system" scenarios ignore the target


@pytest.mark.parametrize("entry", SCENARIOS, ids=lambda entry: entry.name)
def test_scenario_passes_oracle_suite(entry):
    system, pair, remotes, suite = _oracle_fixture(seed=500)
    engine = system.engine
    injector = FailureInjector(system)

    def fire():
        target = _target_for(entry, system, pair)
        duration = 1.0 if entry.name == "transient_network" else 0.8
        suite.note_injection(
            entry.name,
            target_name=target.name if hasattr(target, "name") else None,
            duration=duration,
        )
        entry.inject(injector, target)

    engine.schedule(2.0, fire)
    engine.run_stepped(engine.now + 35.0, suite.check, quantum=CHECK_QUANTUM)
    assert suite.first_violation is None, suite.summary()

    injector.stamp_records()
    completed = system.controller.completed_records()
    if entry.severity == "hard":
        assert completed, "hard scenario must produce a migration record"
        assert completed[0].failed_at == pytest.approx(
            injector.injections[0].injected_at
        )
    else:
        # soft scenarios are survived in place: no migration at all
        assert not system.controller.records


def test_registry_covers_both_severities():
    names = {entry.name for entry in SCENARIOS}
    assert {"application", "container", "host_machine", "host_network"} <= names
    assert {entry.name for entry in scenarios_by_severity("soft")} == {
        "transient_network", "database_blip", "agent"
    }
    assert scenario("container").severity == "hard"
    with pytest.raises(KeyError):
        scenario("nope")


# ----------------------------------------------------------------------
# stamp_records ground-truth matching
# ----------------------------------------------------------------------


def test_stamp_records_repeated_injections_each_claim_their_own():
    """Two container failures in sequence -> two records, each stamped
    with its *own* injection time (the double-count regression: both
    records used to get the same, latest injection)."""
    system, pair, _remotes = build_tensor_fixture(seed=501, routes=50)
    injector = FailureInjector(system)
    first = injector.container_failure(pair)
    system.engine.advance(20.0)
    second = injector.container_failure(pair)
    system.engine.advance(20.0)
    injector.stamp_records()
    records = sorted(
        system.controller.completed_records(), key=lambda r: r.detected_at
    )
    assert len(records) == 2
    assert records[0].failed_at == first.injected_at
    assert records[1].failed_at == second.injected_at
    assert records[0].failed_at != records[1].failed_at


def test_stamp_records_ignores_incompatible_injections():
    """An unrelated database blip landing nearer the detection must not
    become a container record's ground truth."""
    system, pair, _remotes = build_tensor_fixture(seed=502, routes=50)
    injector = FailureInjector(system)
    container = injector.container_failure(pair)
    system.engine.advance(0.05)
    injector.transient_database_failure(0.3)  # closer to the detection
    system.engine.advance(20.0)
    injector.stamp_records()
    records = system.controller.completed_records()
    assert len(records) == 1
    assert records[0].failure_kind == "container"
    assert records[0].failed_at == container.injected_at


def test_stamp_records_is_idempotent():
    system, pair, _remotes = build_tensor_fixture(seed=503, routes=50)
    injector = FailureInjector(system)
    injection = injector.application_failure(pair)
    system.engine.advance(10.0)
    injector.stamp_records()
    injector.stamp_records()
    records = system.controller.completed_records()
    assert len(records) == 1
    assert records[0].failed_at == injection.injected_at
