"""The TENSOR BGP process: replication interposition on live sessions."""


import pytest

from repro.bgp import PeerConfig, SpeakerConfig
from repro.bgp.speaker import BgpSpeaker
from repro.core.replication import ReplicationPipeline
from repro.core.tensor_process import TensorBgpSpeaker
from repro.kvstore import KvClient, KvServer
from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack
from repro.workloads.updates import RouteGenerator
from repro.sim.rand import DeterministicRandom


@pytest.fixture
def env(engine):
    network = Network(engine, DeterministicRandom(10))
    network.enable_fabric(latency=5e-5)
    gw = network.add_host("gw", "10.0.0.1")
    remote = network.add_host("remote", "10.0.0.2")
    network.connect(gw, remote, latency=100e-6, bandwidth=100e9)
    db_host = network.add_host("db", "10.0.0.3")
    db = KvServer(engine, db_host)
    fast = KvClient(engine, gw, "10.0.0.3")
    bulk = KvClient(engine, gw, "10.0.0.3")
    pipeline = ReplicationPipeline("pair0", fast, bulk)
    gw_stack = TcpStack(engine, gw)
    tensor = TensorBgpSpeaker(
        engine, gw_stack,
        SpeakerConfig("gw", 65001, "10.0.0.1", profile="tensor"),
        pipeline, "pair0",
    )
    tensor.add_vrf("v1")
    tensor.add_peer(PeerConfig("10.0.0.2", 64512, vrf_name="v1", mode="passive"))
    remote_stack = TcpStack(engine, remote)
    peer = BgpSpeaker(engine, remote_stack, SpeakerConfig("remote", 64512, "10.0.0.2"))
    peer.add_vrf("v1")
    peer_session = peer.add_peer(PeerConfig("10.0.0.1", 65001, vrf_name="v1", mode="active"))
    tensor.start()
    peer.start()
    engine.advance(5.0)
    return engine, db, pipeline, tensor, peer, peer_session


def test_session_establishes_and_sess_record_written(env):
    engine, db, _pipeline, tensor, _peer, peer_session = env
    assert peer_session.established
    sess_records = db.store.scan("tensor:pair0:sess:")
    assert len(sess_records) == 1
    meta = sess_records[0][1]
    assert meta["remote_as"] == 64512
    assert meta["vrf"] == "v1"
    gw_session = next(iter(tensor.sessions.values()))
    assert meta["iss"] == gw_session.conn.iss
    assert meta["irs"] == gw_session.conn.irs


def test_incoming_updates_replicated_applied_pruned(env):
    engine, db, _pipeline, tensor, peer, peer_session = env
    gen = RouteGenerator(DeterministicRandom(1), 64512, next_hop="10.0.0.2")
    peer.originate_many("v1", gen.routes(500))
    peer.readvertise(peer_session)
    engine.advance(5.0)
    assert len(tensor.vrfs["v1"].loc_rib) == 500
    assert tensor.replicated_in_messages > 0
    # applied messages are pruned: only fresh keepalive residue may remain
    assert tensor.storage_footprint(db.store) < 65536
    # rib deltas landed
    deltas = db.store.scan("tensor:pair0:rib:v1:d:")
    assert deltas


def test_storage_bound_invariant_over_time(env):
    """§3.1.2: <= 64 KB of message records per connection, steady state."""
    engine, db, _pipeline, tensor, peer, peer_session = env
    gen = RouteGenerator(DeterministicRandom(2), 64512, next_hop="10.0.0.2")
    for round_num in range(5):
        peer.originate_many("v1", gen.routes(200, length=24 if round_num % 2 else 23))
        peer.readvertise(peer_session)
        engine.advance(3.0)
        assert tensor.storage_footprint(db.store) < 65536


def test_outgoing_messages_replicated_before_transmit(env):
    engine, db, _pipeline, tensor, peer, peer_session = env
    gen = RouteGenerator(DeterministicRandom(3), 65001, next_hop="10.0.0.1")
    tensor.originate_many("v1", gen.routes(100))
    gw_session = next(iter(tensor.sessions.values()))
    tensor.readvertise(gw_session)
    engine.advance(5.0)
    learned = [r for r in peer.vrfs["v1"].loc_rib.best_routes() if r.source_kind == "ebgp"]
    assert len(learned) == 100
    assert tensor.replicated_out_messages > 0


def test_outgoing_records_pruned_after_remote_ack(env):
    engine, db, _pipeline, tensor, peer, peer_session = env
    gen = RouteGenerator(DeterministicRandom(4), 65001, next_hop="10.0.0.1")
    tensor.originate_many("v1", gen.routes(50))
    gw_session = next(iter(tensor.sessions.values()))
    tensor.readvertise(gw_session)
    engine.advance(5.0)
    # let keepalives flow: pruning happens on incoming-message processing
    engine.advance(65.0)
    out_records = db.store.scan("tensor:pair0:msg:")
    out_only = [k for k, _v in out_records if ":o:" in k]
    # pruned down to the single stream-position anchor record
    assert len(out_only) <= 1, out_only


def test_keepalives_also_replicated(env):
    engine, db, _pipeline, tensor, _peer, _session = env
    before = tensor.replicated_out_messages
    engine.advance(65.0)  # at least two keepalive intervals
    assert tensor.replicated_out_messages > before


def test_ack_inference_alignment_on_live_session(env):
    engine, _db, _pipeline, tensor, _peer, _session = env
    gw_session = next(iter(tensor.sessions.values()))
    assert gw_session.inferred_ack_number == gw_session.conn.rcv_nxt


def test_tensor_receive_slower_than_frr_baseline(env):
    """Fig. 6(a): the replication machinery costs measurable extra time."""
    engine, _db, _pipeline, tensor, peer, peer_session = env
    gen = RouteGenerator(DeterministicRandom(5), 64512, next_hop="10.0.0.2")
    routes = gen.routes(2000)
    peer.originate_many("v1", routes)
    start = engine.now
    peer.readvertise(peer_session)
    engine.advance(10.0)
    tensor_time = tensor.last_apply_time - start
    per_update = tensor_time / 2000
    from repro.sim.calibration import RECEIVE_COST_PER_UPDATE
    assert per_update > RECEIVE_COST_PER_UPDATE["frr"]


def test_crash_stops_replication_and_holds(env):
    engine, db, pipeline, tensor, peer, peer_session = env
    tensor.crash()
    tensor.stack.destroy()
    before = len(db.store)
    peer.originate_many("v1", RouteGenerator(DeterministicRandom(6), 64512).routes(10))
    peer.readvertise(peer_session)
    engine.advance(3.0)
    assert tensor.replicated_in_messages == 0 or len(db.store) >= before  # no crash explosion
    assert not tensor.running
