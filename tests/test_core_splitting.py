"""BGP splitting and joint-container planning (§3.2.4)."""

from repro.core.splitting import (
    JointContainerSpec,
    PeeringSpec,
    SplitPlan,
    plan_split,
)
from repro.sim.rand import DeterministicRandom


def _peerings():
    return [
        PeeringSpec("clientA", 64512, "192.0.2.1"),
        PeeringSpec("clientA", 64513, "192.0.2.2"),
        PeeringSpec("clientB", 64514, "192.0.2.3"),
        PeeringSpec("clientC", 64515, "192.0.2.4", share_group="cdn"),
        PeeringSpec("clientD", 64516, "192.0.2.5", share_group="cdn"),
    ]


def test_one_peering_per_container_by_default():
    plan = plan_split(_peerings())
    assert len(plan.assignments) == 5
    for assignment in plan.assignments:
        assert len(assignment.peerings) == 1


def test_same_client_groups_when_limit_allows():
    plan = plan_split(_peerings(), max_peers_per_container=2)
    clientA = plan.assignment_of("clientA", 64512)
    assert clientA is plan.assignment_of("clientA", 64513)
    assert len(clientA.peerings) == 2


def test_clients_never_mix():
    plan = plan_split(_peerings(), max_peers_per_container=10)
    for assignment in plan.assignments:
        clients = {p.client for p in assignment.peerings}
        assert len(clients) == 1


def test_joint_container_for_share_group():
    plan = plan_split(_peerings())
    assert len(plan.joints) == 1
    joint = plan.joints[0]
    assert joint.share_group == "cdn"
    assert len(joint.member_names) == 2


def test_no_joint_for_single_member_group():
    peerings = [PeeringSpec("x", 1, "192.0.2.9", share_group="solo")]
    plan = plan_split(peerings)
    assert plan.joints == []


def test_container_count_includes_joints():
    plan = plan_split(_peerings())
    assert plan.container_count() == 6


def test_vrf_names_unique_per_peering():
    plan = plan_split(_peerings(), max_peers_per_container=2)
    names = [v for a in plan.assignments for v in a.vrf_names()]
    assert len(names) == len(set(names))


def test_assignment_of_missing_returns_none():
    plan = plan_split(_peerings())
    assert plan.assignment_of("nobody", 99) is None


def test_deterministic_naming():
    plan = plan_split(_peerings(), name_prefix="bgp")
    assert plan.assignments[0].name == "bgp-0"
    assert plan.joints[0].name == "bgp-joint-cdn"


def test_joint_containers_share_information_via_ibgp(engine, network):
    """Figure 4: two member speakers + a joint speaker iBGP-meshed; the
    joint sees routes from both members and can pick the global best."""

    from repro.bgp import BgpSpeaker, PeerConfig, SpeakerConfig
    from repro.tcpsim import TcpStack
    from repro.workloads.updates import RouteGenerator

    network.enable_fabric(latency=5e-5)
    hosts = {
        name: network.add_host(name, addr)
        for name, addr in (
            ("member1", "10.0.1.1"), ("member2", "10.0.1.2"), ("joint", "10.0.1.3"),
        )
    }
    speakers = {}
    for name, host in hosts.items():
        stack = TcpStack(engine, host)
        speakers[name] = BgpSpeaker(
            engine, stack, SpeakerConfig(name, 65001, host.address)
        )
        speakers[name].add_vrf("shared")
    # joint is passive; members connect to it (full mesh to the joint)
    speakers["joint"].add_peer(PeerConfig("10.0.1.1", 65001, vrf_name="shared", mode="passive"))
    speakers["joint"].add_peer(PeerConfig("10.0.1.2", 65001, vrf_name="shared", mode="passive"))
    m1 = speakers["member1"].add_peer(PeerConfig("10.0.1.3", 65001, vrf_name="shared", mode="active"))
    m2 = speakers["member2"].add_peer(PeerConfig("10.0.1.3", 65001, vrf_name="shared", mode="active"))
    for speaker in speakers.values():
        speaker.start()
    engine.advance(5.0)
    assert m1.established and m2.established
    gen = RouteGenerator(DeterministicRandom(3), 65001, next_hop="10.0.1.1")
    # both members originate the same prefix with different local-pref
    prefix = gen.prefixes(1)[0]
    speakers["member1"].originate("shared", prefix, gen.attr_pool[0].replace(local_pref=100))
    speakers["member2"].originate("shared", prefix, gen.attr_pool[0].replace(local_pref=300))
    engine.advance(5.0)
    joint_rib = speakers["joint"].vrfs["shared"].loc_rib
    best = joint_rib.best(prefix)
    assert best is not None
    assert best.attributes.local_pref == 300  # the global optimum won
    assert len(joint_rib.candidates(prefix)) == 2  # saw both members
