"""Netfilter hook chains, verdicts and NFQUEUE behaviour."""

import pytest

from repro.netfilter import HookChain, HookPoint, NfQueue, Rule, Verdict
from repro.sim import Engine
from repro.sim.network import Packet


def _packet(dport=179):
    return Packet("1.1.1.1", "2.2.2.2", "tcp", 5000, dport, "seg", 100)


def test_empty_chain_uses_policy_accept():
    chain = HookChain(HookPoint.OUTPUT)
    assert chain.evaluate(_packet()) == (Verdict.ACCEPT, None)


def test_drop_policy():
    chain = HookChain(HookPoint.INPUT, policy=Verdict.DROP)
    assert chain.evaluate(_packet())[0] is Verdict.DROP


def test_queue_policy_rejected():
    with pytest.raises(ValueError):
        HookChain(HookPoint.OUTPUT, policy=Verdict.QUEUE)


def test_first_matching_rule_wins():
    chain = HookChain(HookPoint.OUTPUT)
    chain.append(Rule(lambda p: p.dport == 179, Verdict.DROP))
    chain.append(Rule(lambda p: True, Verdict.ACCEPT))
    assert chain.evaluate(_packet(179))[0] is Verdict.DROP
    assert chain.evaluate(_packet(80))[0] is Verdict.ACCEPT


def test_insert_puts_rule_first():
    chain = HookChain(HookPoint.OUTPUT)
    chain.append(Rule(lambda p: True, Verdict.DROP))
    chain.insert(Rule(lambda p: True, Verdict.ACCEPT))
    assert chain.evaluate(_packet())[0] is Verdict.ACCEPT


def test_delete_rule():
    chain = HookChain(HookPoint.OUTPUT)
    rule = chain.append(Rule(lambda p: True, Verdict.DROP))
    chain.delete(rule)
    assert chain.evaluate(_packet())[0] is Verdict.ACCEPT
    chain.delete(rule)  # deleting twice is a no-op


def test_flush_removes_all():
    chain = HookChain(HookPoint.OUTPUT)
    chain.append(Rule(lambda p: True, Verdict.DROP))
    chain.flush()
    assert chain.rules == []


def test_rule_hit_counters():
    chain = HookChain(HookPoint.OUTPUT)
    rule = chain.append(Rule(lambda p: p.dport == 179, Verdict.DROP))
    chain.evaluate(_packet(179))
    chain.evaluate(_packet(179))
    chain.evaluate(_packet(80))
    assert rule.hits == 2
    assert chain.evaluations == 3


def test_queue_rule_requires_queue_num():
    with pytest.raises(ValueError):
        Rule(lambda p: True, Verdict.QUEUE)


def test_queue_verdict_returns_queue_num():
    chain = HookChain(HookPoint.OUTPUT)
    chain.append(Rule(lambda p: True, Verdict.QUEUE, queue_num=7))
    assert chain.evaluate(_packet()) == (Verdict.QUEUE, 7)


def test_nfqueue_delivers_to_consumer():
    engine = Engine()
    nfq = NfQueue(engine)
    seen = []
    nfq.bind(1, seen.append)
    released = []
    nfq.enqueue(1, _packet(), released.append)
    engine.run_until_idle()  # the kernel->userspace copy takes time
    assert len(seen) == 1
    assert not seen[0].decided


def test_nfqueue_accept_releases_packet():
    engine = Engine()
    nfq = NfQueue(engine)
    held = []
    nfq.bind(1, held.append)
    released = []
    nfq.enqueue(1, _packet(), released.append)
    engine.run_until_idle()
    held[0].accept()
    engine.run_until_idle()  # the verdict round trip takes time
    assert len(released) == 1
    held[0].accept()  # idempotent
    engine.run_until_idle()
    assert len(released) == 1


def test_nfqueue_drop_discards():
    engine = Engine()
    nfq = NfQueue(engine)
    held = []
    nfq.bind(1, held.append)
    released = []
    nfq.enqueue(1, _packet(), released.append)
    engine.run_until_idle()
    held[0].drop()
    held[0].accept()  # too late: already decided
    engine.run_until_idle()
    assert released == []


def test_nfqueue_unbound_queue_drops_like_kernel():
    engine = Engine()
    nfq = NfQueue(engine)
    released = []
    result = nfq.enqueue(3, _packet(), released.append)
    assert result is None
    assert released == []
    assert nfq.dropped_unbound == 1


def test_nfqueue_queued_at_timestamp():
    engine = Engine()
    engine.advance(2.5)
    nfq = NfQueue(engine)
    held = []
    nfq.bind(1, held.append)
    nfq.enqueue(1, _packet(), lambda p: None)
    engine.run_until_idle()
    assert held[0].queued_at == 2.5


def test_stack_egress_queue_and_release(engine, two_stacks):
    """End to end: a held pure ACK delays the sender's progress."""
    from conftest import make_tcp_pair

    sa, sb = two_stacks
    held = []

    def is_pure_ack(packet):
        seg = packet.payload
        return seg.has_ack and not seg.payload and not seg.syn and not seg.rst and not seg.fin

    client, accepted, received = make_tcp_pair(engine, sa, sb)
    sb.output_chain.append(Rule(is_pure_ack, Verdict.QUEUE, queue_num=1))
    sb.nfqueue.bind(1, held.append)
    client.send(b"z" * 100)
    engine.advance(0.5)
    assert bytes(received) == b"z" * 100  # data delivered to the app
    assert held  # but the ACK is held
    assert client.snd_una < client.snd_nxt  # sender still waiting
    for queued in held:
        queued.accept()
    engine.advance(0.5)
    assert client.snd_una == client.snd_nxt  # ACK arrived after release


def test_nfqueue_technology_delays():
    from repro.sim.calibration import EBPF_QUEUE_DELAY, NETFILTER_QUEUE_DELAY

    for tech, queue_delay in (("netfilter", NETFILTER_QUEUE_DELAY),
                              ("ebpf", EBPF_QUEUE_DELAY)):
        engine = Engine()
        nfq = NfQueue(engine, technology=tech)
        seen = []
        nfq.bind(1, lambda qp: seen.append(engine.now))
        nfq.enqueue(1, _packet(), lambda p: None)
        engine.run_until_idle()
        assert seen[0] == pytest.approx(queue_delay)


def test_nfqueue_rejects_unknown_technology():
    with pytest.raises(ValueError):
        NfQueue(Engine(), technology="dpdk")


def test_ebpf_faster_than_netfilter():
    from repro.sim.calibration import (
        EBPF_QUEUE_DELAY, EBPF_VERDICT_DELAY,
        NETFILTER_QUEUE_DELAY, NETFILTER_VERDICT_DELAY,
    )
    assert EBPF_QUEUE_DELAY < NETFILTER_QUEUE_DELAY
    assert EBPF_VERDICT_DELAY < NETFILTER_VERDICT_DELAY
