"""Unit tests for the network fabric: delivery, loss, failures, anchors."""

import pytest

from repro.sim import DeterministicRandom, Engine, Network, Packet
from repro.sim.engine import SimulationError


def _packet(src, dst, size=100, payload="p"):
    return Packet(src, dst, "udp", 1000, 2000, payload, size)


@pytest.fixture
def net(engine):
    return Network(engine, DeterministicRandom(9))


def test_delivery_over_link(engine, net):
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    net.connect(a, b, latency=1e-3, bandwidth=1e9)
    got = []
    b.bind("udp", 2000, got.append)
    a.send(_packet("1.1.1.1", "1.1.1.2"))
    engine.run_until_idle()
    assert len(got) == 1
    assert engine.now >= 1e-3


def test_duplicate_address_rejected(net):
    net.add_host("a", "1.1.1.1")
    with pytest.raises(SimulationError):
        net.add_host("b", "1.1.1.1")


def test_replace_address_rebinds(engine, net):
    a = net.add_host("a", "1.1.1.1")
    old = net.add_host("svc", "9.9.9.9")
    new = net.add_host("svc2", "9.9.9.9", replace=True)
    assert net.host_by_address("9.9.9.9") is new


def test_unbound_port_drops_packet(engine, net):
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    net.connect(a, b)
    a.send(_packet("1.1.1.1", "1.1.1.2"))
    engine.run_until_idle()
    assert b.dropped_unbound == 1


def test_unknown_destination_dropped(engine, net):
    a = net.add_host("a", "1.1.1.1")
    net.enable_fabric()
    assert a.send(_packet("1.1.1.1", "8.8.8.8")) is True  # sent, then dropped
    assert net.packets_dropped == 1


def test_no_path_raises_without_fabric(engine, net):
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    with pytest.raises(SimulationError):
        a.send(_packet("1.1.1.1", "1.1.1.2"))


def test_fabric_fallback_delivers(engine, net):
    net.enable_fabric(latency=1e-3)
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    got = []
    b.bind("udp", 2000, got.append)
    a.send(_packet("1.1.1.1", "1.1.1.2"))
    engine.run_until_idle()
    assert got


def test_link_down_drops(engine, net):
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    link = net.connect(a, b)
    link.fail()
    got = []
    b.bind("udp", 2000, got.append)
    a.send(_packet("1.1.1.1", "1.1.1.2"))
    engine.run_until_idle()
    assert not got
    link.repair()
    a.send(_packet("1.1.1.1", "1.1.1.2"))
    engine.run_until_idle()
    assert got


def test_loss_rate_drops_fraction(engine, net):
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    net.connect(a, b, loss=0.5)
    got = []
    b.bind("udp", 2000, got.append)
    for _ in range(1000):
        a.send(_packet("1.1.1.1", "1.1.1.2"))
    engine.run_until_idle()
    assert 350 < len(got) < 650  # ~50% with deterministic seed


def test_dead_host_cannot_send(engine, net):
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    net.connect(a, b)
    a.fail()
    assert a.send(_packet("1.1.1.1", "1.1.1.2")) is False


def test_dead_host_does_not_receive(engine, net):
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    net.connect(a, b)
    got = []
    b.bind("udp", 2000, got.append)
    b.fail()
    a.send(_packet("1.1.1.1", "1.1.1.2"))
    engine.run_until_idle()
    assert not got


def test_nic_failure_blocks_but_host_up(engine, net):
    a = net.add_host("a", "1.1.1.1")
    a.fail_network()
    assert a.up and not a.reachable()
    a.recover_network()
    assert a.reachable()


def test_anchored_endpoint_traverses_parent(engine, net):
    machine = net.add_host("m", "1.1.1.1")
    container = net.add_host("c", "1.1.1.100", anchor=machine)
    peer = net.add_host("p", "1.1.1.2")
    net.connect(machine, peer)
    got = []
    peer.bind("udp", 2000, got.append)
    container.send(_packet("1.1.1.100", "1.1.1.2"))
    engine.run_until_idle()
    assert got


def test_anchored_endpoint_unreachable_when_parent_down(engine, net):
    machine = net.add_host("m", "1.1.1.1")
    container = net.add_host("c", "1.1.1.100", anchor=machine)
    machine.fail()
    assert not container.reachable()


def test_anchored_endpoint_unreachable_when_parent_nic_down(engine, net):
    machine = net.add_host("m", "1.1.1.1")
    container = net.add_host("c", "1.1.1.100", anchor=machine)
    machine.fail_network()
    assert not container.reachable()
    assert container.up


def test_serialization_delay_caps_throughput(engine, net):
    # 1 Mbps link: a 1250-byte packet takes 10 ms to serialize; ten
    # packets queue behind each other.
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    net.connect(a, b, latency=0.0, bandwidth=1e6)
    times = []
    b.bind("udp", 2000, lambda p: times.append(engine.now))
    for _ in range(10):
        a.send(_packet("1.1.1.1", "1.1.1.2", size=1250))
    engine.run_until_idle()
    assert len(times) == 10
    assert abs(times[-1] - 0.1) < 1e-6  # 10 x 10 ms


def test_local_delivery_between_same_anchor(engine, net):
    machine = net.add_host("m", "1.1.1.1")
    c1 = net.add_host("c1", "1.1.1.100", anchor=machine)
    c2 = net.add_host("c2", "1.1.1.101", anchor=machine)
    got = []
    c2.bind("udp", 2000, got.append)
    c1.send(_packet("1.1.1.100", "1.1.1.101"))
    engine.run_until_idle()
    assert got
    assert engine.now == Network.LOCAL_LATENCY


def test_tap_observes_all_packets(engine, net):
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    net.connect(a, b)
    seen = []
    net.tap(lambda packet, delivered: seen.append((packet.dst, delivered)))
    a.send(_packet("1.1.1.1", "1.1.1.2"))
    a.send(_packet("1.1.1.1", "5.5.5.5"))
    engine.run_until_idle()
    assert seen == [("1.1.1.2", True), ("5.5.5.5", False)]


def test_link_statistics(engine, net):
    a = net.add_host("a", "1.1.1.1")
    b = net.add_host("b", "1.1.1.2")
    link = net.connect(a, b)
    b.bind("udp", 2000, lambda p: None)
    a.send(_packet("1.1.1.1", "1.1.1.2", size=500))
    engine.run_until_idle()
    assert link.packets_carried == 1
    assert link.bytes_carried == 500
