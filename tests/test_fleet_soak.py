"""Fleet soak: a multi-pair deployment under a stream of mixed failures.

A miniature of the paper's two-year operational claim (§4.4): failures
drawn from the Table 1 mix hit a fleet of container pairs one after
another; every recovery must complete, every remote session must hold,
and total remote-visible downtime must stay zero.
"""


import pytest

from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.failures import FailureInjector
from repro.workloads.topology import DowntimeObserver, build_remote_peer
from repro.workloads.updates import RouteGenerator
from repro.sim.rand import DeterministicRandom

PAIRS = 6
ROUTES = 100


def build_fleet(seed=700):
    system = TensorSystem(seed=seed)
    machines = [
        system.add_machine("gw-1", "10.1.0.1"),
        system.add_machine("gw-2", "10.2.0.1"),
        system.add_machine("gw-3", "10.3.0.1"),
    ]
    pairs = []
    observers = []
    for i in range(PAIRS):
        primary = machines[i % 3]
        backup = machines[(i + 1) % 3]
        pair = system.create_pair(
            f"pair{i}", primary, backup,
            service_addr=f"10.10.{i}.1", local_as=65001,
            router_id=f"10.10.{i}.1",
            neighbors=[PeerNeighborSpec(f"192.0.2.{i + 1}", 64512 + i,
                                        vrf_name="v0", mode="passive")],
        )
        remote = build_remote_peer(system, f"remote{i}", f"192.0.2.{i + 1}",
                                   64512 + i, link_machines=machines)
        session = remote.peer_with(f"10.10.{i}.1", 65001, vrf_name="v0",
                                   mode="active")
        pair.start()
        remote.start()
        pairs.append((pair, remote, session))
    system.engine.advance(12.0)
    gen = RouteGenerator(DeterministicRandom(seed), 64512, next_hop="192.0.2.1")
    for _pair, remote, session in pairs:
        remote.speaker.originate_many("v0", gen.routes(ROUTES))
        remote.speaker.readvertise(session)
    system.engine.advance(5.0)
    for _pair, remote, session in pairs:
        observer = DowntimeObserver(system.engine, session,
                                    remote.speaker.vrfs["v0"],
                                    expect_routes=ROUTES)
        observer.start()
        observers.append(observer)
    return system, pairs, observers


@pytest.mark.slow
def test_fleet_survives_mixed_failure_stream():
    system, pairs, observers = build_fleet()
    injector = FailureInjector(system)
    rng = DeterministicRandom(99).stream("failures")
    # a failure every ~25 s for a few virtual minutes, drawn from the
    # Table 1 mix (machine-level failures target non-fenced machines)
    for round_num in range(6):
        kind = rng.choices(
            ["application", "container", "host_network"],
            weights=[0.03, 0.13, 0.65],
        )[0]
        if kind in ("application", "container"):
            pair, _remote, _session = rng.choice(pairs)
            if kind == "application":
                injector.application_failure(pair)
            else:
                injector.container_failure(pair)
        else:
            candidates = [
                m for m in system.machines.values()
                if m.alive and m.host.network_up
                and not system.fencing.is_fenced(m.name)
                and any(p.active_machine is m for p, _r, _s in pairs)
            ]
            if not candidates:
                continue
            injector.host_network_failure(rng.choice(candidates))
        system.engine.advance(25.0)
        # between failures the operators repair and unfence broken
        # machines (NSR's scope is single-point failures; §3.3.3 requires
        # the manual reset before a machine is reused)
        for name in list(system.fencing.fenced_machines()):
            machine = system.machines[name]
            machine.recover()
            system.controller.manual_reset_machine(name)
    system.engine.advance(30.0)
    injector.stamp_records()

    # every injected failure produced a completed recovery
    records = system.controller.completed_records()
    assert len(records) >= len(injector.injections) - 1  # host hits batch pairs
    assert all(record.total_time < 15.0 for record in records)
    # every remote session held; zero downtime across the whole soak
    for (pair, _remote, session), observer in zip(pairs, observers):
        observer.stop()
        assert session.established, pair.name
        assert observer.total_downtime == 0.0, (pair.name, observer.transitions)
        assert len(pair.speaker.vrfs["v0"].loc_rib) == ROUTES
    # database footprint stays bounded (messages pruned fleet-wide)
    for pair, _remote, _session in pairs:
        assert pair.speaker.storage_footprint(system.db.store) < 65536
