"""Shared fixtures and topology helpers for the test suite."""

import pytest

from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def network(engine):
    return Network(engine, DeterministicRandom(1234))


@pytest.fixture
def two_hosts(engine, network):
    """Two hosts on a dedicated 100 Gbps link, with TCP stacks."""
    a = network.add_host("a", "10.0.0.1")
    b = network.add_host("b", "10.0.0.2")
    network.connect(a, b, latency=100e-6, bandwidth=100e9)
    return a, b


@pytest.fixture
def two_stacks(engine, two_hosts):
    a, b = two_hosts
    return TcpStack(engine, a), TcpStack(engine, b)


def make_tcp_pair(engine, stack_a, stack_b, port=7000, payload=b""):
    """Connect stack_a -> stack_b:port; returns (client_conn, accepted_holder).

    ``accepted_holder`` is a one-element list filled with the server-side
    connection once the handshake completes.
    """
    accepted = []
    received = bytearray()

    def on_accept(conn):
        accepted.append(conn)
        conn.on_data = lambda _c, data: received.extend(data)

    stack_b.listen(port, on_accept)
    client = stack_a.connect(stack_b.host.address, port)
    if payload:
        client.on_established = lambda conn: conn.send(payload)
    engine.advance(1.0)
    return client, accepted, received


def build_tensor_fixture(seed=7, routes=1000, neighbors=1, preheat=True,
                         rand=None, tracing=False, shared_vrf=False,
                         controller_replicas=1):
    """A full TensorSystem with one pair and one remote AS, converged.

    ``rand`` overrides the :class:`DeterministicRandom` namespace the
    workload draws from (the chaos engine forks its schedule namespace
    into here); by default it derives from ``seed``.
    ``controller_replicas`` sizes the controller panel (DESIGN.md §15).
    """
    from repro.core.system import PeerNeighborSpec, TensorSystem
    from repro.workloads.topology import build_remote_peer
    from repro.workloads.updates import RouteGenerator

    system = TensorSystem(seed=seed, tracing=tracing,
                          controller_replicas=controller_replicas)
    engine = system.engine
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    vrf_of = (lambda i: "v0") if shared_vrf else (lambda i: f"v{i}")
    specs = [
        PeerNeighborSpec(f"192.0.2.{i + 1}", 64512 + i, vrf_name=vrf_of(i), mode="passive")
        for i in range(neighbors)
    ]
    pair = system.create_pair(
        "pair0",
        m1,
        m2,
        service_addr="10.10.0.1",
        local_as=65001,
        router_id="10.10.0.1",
        neighbors=specs,
        preheat_backup=preheat,
    )
    remotes = []
    for i in range(neighbors):
        remote = build_remote_peer(
            system, f"remote{i}", f"192.0.2.{i + 1}", 64512 + i, link_machines=[m1, m2]
        )
        session = remote.peer_with("10.10.0.1", 65001, vrf_name=vrf_of(i), mode="active")
        remotes.append((remote, session))
    pair.start()
    for remote, _session in remotes:
        remote.start()
    engine.advance(10.0)
    if routes:
        if rand is None:
            rand = DeterministicRandom(seed)
        if shared_vrf:
            # Disjoint prefix blocks with per-remote next hops, so each
            # remote's routes re-propagate to every *other* remote (the
            # gateway skips peers that are a route's own next hop).
            for i, (remote, session) in enumerate(remotes):
                gen = RouteGenerator(
                    rand.fork(f"workload{i}"), 64512 + i,
                    next_hop=f"192.0.2.{i + 1}",
                )
                remote.speaker.originate_many(
                    session.config.vrf_name,
                    gen.routes(routes, base=f"{10 + i}.248.0.0"),
                )
                remote.speaker.readvertise(session)
        else:
            gen = RouteGenerator(rand.fork("workload"), 64512, next_hop="192.0.2.1")
            for remote, session in remotes:
                remote.speaker.originate_many(session.config.vrf_name, gen.routes(routes))
                remote.speaker.readvertise(session)
        engine.advance(5.0)
    return system, pair, remotes
