"""gRPC-style channels and IP SLA probes."""

import pytest

from repro.control.channels import GrpcChannel, HealthServer
from repro.control.ipsla import IpSlaProber, IpSlaResponder
from repro.sim import DeterministicRandom, Engine, Network


@pytest.fixture
def net(engine):
    network = Network(engine, DeterministicRandom(8))
    network.enable_fabric(latency=1e-4)
    return network


def test_heartbeats_stream_status(engine, net):
    ctrl = net.add_host("ctrl", "1.1.1.1")
    target = net.add_host("t", "1.1.1.2")
    HealthServer(engine, target, status_fn=lambda: {"x": 42}, port=50051)
    statuses = []
    channel = GrpcChannel(engine, ctrl, "t", "1.1.1.2", target_port=50051,
                          on_status=lambda ch, s: statuses.append(s))
    channel.start()
    engine.advance(1.0)
    assert statuses and statuses[-1] == {"x": 42}
    assert channel.healthy
    assert channel.last_reply_at is not None


def test_unhealthy_after_miss_threshold(engine, net):
    ctrl = net.add_host("ctrl", "1.1.1.1")
    target = net.add_host("t", "1.1.1.2")
    HealthServer(engine, target, port=50051)
    events = []
    channel = GrpcChannel(engine, ctrl, "t", "1.1.1.2", target_port=50051,
                          on_unhealthy=lambda ch: events.append(("down", engine.now)),
                          on_healthy=lambda ch: events.append(("up", engine.now)))
    channel.start()
    engine.advance(1.0)
    t_fail = engine.now
    target.fail()
    engine.advance(2.0)
    assert events and events[0][0] == "down"
    # detection within ~2 intervals + timeout
    assert events[0][1] - t_fail < 1.0


def test_healthy_again_after_recovery(engine, net):
    ctrl = net.add_host("ctrl", "1.1.1.1")
    target = net.add_host("t", "1.1.1.2")
    HealthServer(engine, target, port=50051)
    events = []
    channel = GrpcChannel(engine, ctrl, "t", "1.1.1.2", target_port=50051,
                          on_unhealthy=lambda ch: events.append("down"),
                          on_healthy=lambda ch: events.append("up"))
    channel.start()
    engine.advance(0.5)
    target.fail()
    engine.advance(2.0)
    target.recover()
    engine.advance(2.0)
    assert events == ["down", "up"]


def test_channel_stop_halts_beats(engine, net):
    ctrl = net.add_host("ctrl", "1.1.1.1")
    target = net.add_host("t", "1.1.1.2")
    server = HealthServer(engine, target, port=50051)
    channel = GrpcChannel(engine, ctrl, "t", "1.1.1.2", target_port=50051)
    channel.start()
    engine.advance(0.5)
    served = server.rpc.requests_served
    channel.stop()
    engine.advance(1.0)
    # at most one heartbeat that was already in flight may still land
    assert server.rpc.requests_served <= served + 1
    settled = server.rpc.requests_served
    engine.advance(1.0)
    assert server.rpc.requests_served == settled


def test_ipsla_prober_reports_transitions(engine, net):
    src = net.add_host("agent", "1.1.1.1")
    t1 = net.add_host("t1", "1.1.1.2")
    t2 = net.add_host("t2", "1.1.1.3")
    IpSlaResponder(engine, t1)
    IpSlaResponder(engine, t2)
    changes = []
    prober = IpSlaProber(engine, src, "agent",
                         on_change=lambda p, name, ok: changes.append((name, ok)))
    prober.add_target("t1", "1.1.1.2")
    prober.add_target("t2", "1.1.1.3")
    prober.start()
    engine.advance(1.0)
    assert prober.reachable("t1") and prober.reachable("t2")
    t1.fail()
    engine.advance(2.0)
    assert ("t1", False) in changes
    assert prober.reachable("t2")
    t1.recover()
    engine.advance(2.0)
    assert ("t1", True) in changes


def test_ipsla_prober_blind_when_own_network_down(engine, net):
    """A prober whose own NIC is down must not report targets as failed
    (it cannot observe anything) — prevents self-inflicted false alarms."""
    src = net.add_host("m1", "1.1.1.1")
    t1 = net.add_host("t1", "1.1.1.2")
    IpSlaResponder(engine, t1)
    changes = []
    prober = IpSlaProber(engine, src, "m1",
                         on_change=lambda p, name, ok: changes.append((name, ok)))
    prober.add_target("t1", "1.1.1.2")
    prober.start()
    engine.advance(1.0)
    changes.clear()
    src.fail_network()
    engine.advance(3.0)
    assert changes == []


def test_ipsla_retarget(engine, net):
    src = net.add_host("agent", "1.1.1.1")
    t1 = net.add_host("t1", "1.1.1.2")
    t2 = net.add_host("t2", "1.1.1.3")
    IpSlaResponder(engine, t1)
    IpSlaResponder(engine, t2)
    prober = IpSlaProber(engine, src, "agent")
    prober.add_target("x", "1.1.1.2")
    prober.start()
    engine.advance(0.5)
    prober.retarget("x", "1.1.1.3")
    t1.fail()
    engine.advance(2.0)
    assert prober.reachable("x") is True  # now probing t2
