"""Update packing: grouping by attributes, message-size budgeting."""

from hypothesis import given, strategies as st

from repro.bgp import PathAttributes, Prefix, pack_routes
from repro.bgp.attributes import AsPath
from repro.bgp.messages import MAX_MESSAGE_SIZE, decode_message
from repro.bgp.packing import pack_withdrawals

A1 = PathAttributes(as_path=AsPath.sequence(65001), next_hop="1.1.1.1")
A2 = PathAttributes(as_path=AsPath.sequence(65002), next_hop="1.1.1.1")


def _prefixes(n, length=24):
    return [Prefix(i << (32 - length), length) for i in range(n)]


def test_shared_attributes_pack_into_one_message():
    routes = [(p, A1) for p in _prefixes(100)]
    messages = pack_routes(routes)
    assert len(messages) == 1
    assert len(messages[0].nlri) == 100


def test_distinct_attributes_split_messages():
    routes = [(p, A1 if i % 2 == 0 else A2) for i, p in enumerate(_prefixes(10))]
    messages = pack_routes(routes)
    assert len(messages) == 2
    assert {len(m.nlri) for m in messages} == {5}


def test_messages_respect_size_limit():
    routes = [(p, A1) for p in _prefixes(3000)]
    messages = pack_routes(routes)
    assert len(messages) > 1
    for message in messages:
        assert len(message.to_wire()) <= MAX_MESSAGE_SIZE


def test_no_prefix_lost_or_duplicated():
    routes = [(p, A1 if i % 3 else A2) for i, p in enumerate(_prefixes(2500))]
    messages = pack_routes(routes)
    packed = [p for m in messages for p in m.nlri]
    assert sorted(packed) == sorted(p for p, _a in routes)
    assert len(set(packed)) == len(packed)


def test_packed_messages_decode():
    routes = [(p, A1) for p in _prefixes(1500)]
    for message in pack_routes(routes):
        assert decode_message(message.to_wire()) == message


def test_pack_withdrawals_batches():
    messages = pack_withdrawals(_prefixes(3000))
    assert len(messages) > 1
    got = [p for m in messages for p in m.withdrawn]
    assert sorted(got) == sorted(_prefixes(3000))
    for message in messages:
        assert len(message.to_wire()) <= MAX_MESSAGE_SIZE
        assert not message.nlri


def test_empty_input():
    assert pack_routes([]) == []
    assert pack_withdrawals([]) == []


def test_order_of_first_appearance_preserved():
    routes = [(Prefix(1 << 8, 24), A2), (Prefix(2 << 8, 24), A1), (Prefix(3 << 8, 24), A2)]
    messages = pack_routes(routes)
    assert messages[0].attributes == A2
    assert messages[1].attributes == A1


@given(n=st.integers(min_value=1, max_value=4000),
       pool=st.integers(min_value=1, max_value=5))
def test_packing_property_complete_and_bounded(n, pool):
    attrs = [
        PathAttributes(as_path=AsPath.sequence(65000 + i), next_hop="1.1.1.1")
        for i in range(pool)
    ]
    routes = [(p, attrs[i % pool]) for i, p in enumerate(_prefixes(n))]
    messages = pack_routes(routes)
    packed = [p for m in messages for p in m.nlri]
    assert len(packed) == n
    for message in messages:
        assert len(message.to_wire()) <= MAX_MESSAGE_SIZE
    # optimality-ish: message count is at most pool + total-size bound
    total_nlri_bytes = sum(p.wire_size for p, _a in routes)
    assert len(messages) <= pool + total_nlri_bytes // 3500 + pool
