"""Property round-trip tests for the interned wire codec (PR 1).

Random attribute sets, prefixes and UPDATE messages must survive
``to_wire`` → ``parse`` unchanged, and repeated decodes of the same
bytes must hit the flyweight cache (identity, not just equality).

Hypothesis drives the generation when available (``derandomize=True``
keeps the corpus stable across runs); a ``DeterministicRandom``-seeded
fallback covers the same properties so the file has teeth even without
hypothesis installed.
"""

import pytest

from repro.bgp.attributes import (
    FLAG_OPTIONAL,
    FLAG_TRANSITIVE,
    AsPath,
    Origin,
    PathAttributes,
    int_to_ipv4,
)
from repro.bgp.messages import HEADER_SIZE, UpdateMessage
from repro.bgp.prefixes import Prefix
from repro.sim import DeterministicRandom

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the image bakes hypothesis in
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

# Unknown attributes must round-trip as opaque (flags, type, value)
# triples; optional+transitive is the only class the decoder carries
# through, and the type must avoid every code the codec understands.
UNKNOWN_FLAGS = FLAG_OPTIONAL | FLAG_TRANSITIVE
UNKNOWN_TYPES = (200, 201, 231, 240)


if HAVE_HYPOTHESIS:
    asns = st.integers(min_value=0, max_value=2**32 - 1)
    ipv4 = st.integers(min_value=0, max_value=2**32 - 1).map(int_to_ipv4)

    as_paths = st.lists(
        st.tuples(st.sampled_from((1, 2)), st.lists(asns, max_size=6)),
        max_size=4,
    ).map(AsPath)

    unknown_attrs = st.lists(
        st.tuples(
            st.just(UNKNOWN_FLAGS),
            st.sampled_from(UNKNOWN_TYPES),
            st.binary(max_size=16),
        ),
        max_size=2,
    ).map(tuple)

    path_attributes = st.builds(
        PathAttributes,
        origin=st.sampled_from(Origin),
        as_path=as_paths,
        next_hop=st.none() | ipv4,
        med=st.none() | st.integers(min_value=0, max_value=2**32 - 1),
        local_pref=st.none() | st.integers(min_value=0, max_value=2**32 - 1),
        atomic_aggregate=st.booleans(),
        aggregator=st.none() | st.tuples(asns, ipv4),
        communities=st.lists(
            st.integers(min_value=0, max_value=2**32 - 1), max_size=8
        ).map(tuple),
        unknown=unknown_attrs,
    )

    v4_prefixes = st.builds(
        Prefix,
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=32),
    )

    updates = st.builds(
        UpdateMessage,
        withdrawn=st.lists(v4_prefixes, max_size=8, unique=True),
        attributes=path_attributes,
        nlri=st.lists(v4_prefixes, max_size=8, unique=True),
    )

    @needs_hypothesis
    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(path=as_paths)
    def test_as_path_roundtrip(path):
        assert AsPath.from_wire(path.to_wire()) == path

    @needs_hypothesis
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(attrs=path_attributes)
    def test_path_attributes_roundtrip(attrs):
        wire = attrs.to_wire()
        decoded = PathAttributes.from_wire(wire, intern=False)
        assert decoded == attrs
        assert decoded.to_wire() == wire

    @needs_hypothesis
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(attrs=path_attributes)
    def test_path_attributes_flyweight_identity(attrs):
        wire = attrs.to_wire()
        first = PathAttributes.from_wire(wire)
        again = PathAttributes.from_wire(wire)
        assert again is first  # cache hit, not a re-decode
        assert PathAttributes.intern(first) is first

    @needs_hypothesis
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(prefix=v4_prefixes)
    def test_prefix_roundtrip(prefix):
        decoded, offset = Prefix.from_wire(prefix.to_wire(), 0)
        assert decoded == prefix
        assert offset == prefix.wire_size

    @needs_hypothesis
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(
        value=st.integers(min_value=0, max_value=2**128 - 1),
        length=st.integers(min_value=0, max_value=128),
    )
    def test_prefix_v6_roundtrip(value, length):
        prefix = Prefix(value, length, afi=Prefix.AFI_IPV6)
        decoded, _offset = Prefix.from_wire(
            prefix.to_wire(), 0, afi=Prefix.AFI_IPV6
        )
        assert decoded == prefix

    @needs_hypothesis
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(message=updates)
    def test_update_message_roundtrip(message):
        wire = message.to_wire()
        decoded = UpdateMessage.from_body(wire[HEADER_SIZE:])
        assert decoded == message
        assert decoded.to_wire() == wire


# ----------------------------------------------------------------------
# seeded fallback (always runs)
# ----------------------------------------------------------------------

def _random_attributes(rng):
    segments = [
        (rng.choice([1, 2]),
         tuple(rng.randint(0, 2**32 - 1) for _ in range(rng.randint(0, 6))))
        for _ in range(rng.randint(0, 3))
    ]
    maybe = lambda value: value if rng.random() < 0.5 else None
    return PathAttributes(
        origin=rng.choice(list(Origin)),
        as_path=AsPath(segments),
        next_hop=maybe(int_to_ipv4(rng.randint(0, 2**32 - 1))),
        med=maybe(rng.randint(0, 2**32 - 1)),
        local_pref=maybe(rng.randint(0, 2**32 - 1)),
        atomic_aggregate=rng.random() < 0.5,
        aggregator=maybe(
            (rng.randint(0, 2**32 - 1), int_to_ipv4(rng.randint(0, 2**32 - 1)))
        ),
        communities=tuple(
            rng.randint(0, 2**32 - 1) for _ in range(rng.randint(0, 8))
        ),
        unknown=tuple(
            (UNKNOWN_FLAGS, rng.choice(UNKNOWN_TYPES),
             bytes(rng.randint(0, 255) for _ in range(rng.randint(0, 16))))
            for _ in range(rng.randint(0, 2))
        ),
    )


def _random_prefixes(rng, count):
    seen = {}
    for _ in range(count):
        prefix = Prefix(rng.randint(0, 2**32 - 1), rng.randint(0, 32))
        seen[(prefix.value, prefix.length)] = prefix
    return tuple(seen.values())


def test_seeded_codec_roundtrip_corpus():
    rng = DeterministicRandom(401).stream("codec")
    for _ in range(150):
        attrs = _random_attributes(rng)
        wire = attrs.to_wire()
        assert PathAttributes.from_wire(wire, intern=False) == attrs
        assert PathAttributes.from_wire(wire) is PathAttributes.from_wire(wire)

        message = UpdateMessage(
            withdrawn=_random_prefixes(rng, rng.randint(0, 6)),
            attributes=attrs,
            nlri=_random_prefixes(rng, rng.randint(0, 6)),
        )
        body = message.to_wire()[HEADER_SIZE:]
        assert UpdateMessage.from_body(body) == message
