"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimulationError


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_schedule_and_run_fires_callback():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "x")
    engine.run_until_idle()
    assert fired == ["x"]
    assert engine.now == 1.0


def test_events_fire_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(2.0, order.append, "late")
    engine.schedule(1.0, order.append, "early")
    engine.schedule(3.0, order.append, "latest")
    engine.run_until_idle()
    assert order == ["early", "late", "latest"]


def test_same_time_events_fire_fifo():
    engine = Engine()
    order = []
    for i in range(10):
        engine.schedule(1.0, order.append, i)
    engine.run_until_idle()
    assert order == list(range(10))


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(1.0, fired.append, "x")
    event.cancel()
    engine.run_until_idle()
    assert fired == []


def test_cancel_is_idempotent():
    engine = Engine()
    event = engine.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert engine.run_until_idle() == 0


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-0.1, lambda: None)


def test_non_finite_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(float("inf"), lambda: None)
    with pytest.raises(SimulationError):
        Engine().schedule(float("nan"), lambda: None)


def test_run_until_stops_before_later_events():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(5.0, fired.append, "b")
    engine.run(until=2.0)
    assert fired == ["a"]
    assert engine.now == 2.0  # clock advanced to the horizon


def test_run_until_then_resume():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(5.0, fired.append, "b")
    engine.run(until=2.0)
    engine.run_until_idle()
    assert fired == ["a", "b"]
    assert engine.now == 5.0


def test_advance_moves_clock_by_duration():
    engine = Engine()
    engine.advance(3.5)
    assert engine.now == 3.5


def test_schedule_at_absolute_time():
    engine = Engine()
    engine.advance(2.0)
    times = []
    engine.schedule_at(5.0, lambda: times.append(engine.now))
    engine.run_until_idle()
    assert times == [5.0]


def test_call_soon_runs_at_current_instant():
    engine = Engine()
    engine.advance(1.0)
    times = []
    engine.call_soon(lambda: times.append(engine.now))
    engine.run_until_idle()
    assert times == [1.0]


def test_events_scheduled_during_run_execute():
    engine = Engine()
    fired = []

    def first():
        engine.schedule(1.0, fired.append, "second")

    engine.schedule(1.0, first)
    engine.run_until_idle()
    assert fired == ["second"]
    assert engine.now == 2.0


def test_stop_halts_loop():
    engine = Engine()
    fired = []
    engine.schedule(1.0, engine.stop)
    engine.schedule(2.0, fired.append, "x")
    engine.run()
    assert fired == []
    assert engine.pending() == 1


def test_max_events_bound():
    engine = Engine()
    for i in range(10):
        engine.schedule(i * 0.1, lambda: None)
    executed = engine.run(max_events=4)
    assert executed == 4


def test_run_until_idle_detects_runaway():
    engine = Engine()

    def loop():
        engine.schedule(0.0, loop)

    engine.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        engine.run_until_idle(max_events=1000)


def test_reentrant_run_rejected():
    engine = Engine()

    def inner():
        engine.run()

    engine.schedule(0.1, inner)
    with pytest.raises(SimulationError):
        engine.run_until_idle()


def test_pending_counts_only_live_events():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    cancelled = engine.schedule(2.0, lambda: None)
    cancelled.cancel()
    assert engine.pending() == 1


def test_callback_args_passed_through():
    engine = Engine()
    got = []
    engine.schedule(0.1, lambda a, b: got.append((a, b)), 1, "two")
    engine.run_until_idle()
    assert got == [(1, "two")]


def test_run_stepped_observes_every_quantum():
    engine = Engine()
    seen = []
    fired = []
    engine.schedule(0.3, fired.append, "a")
    engine.schedule(0.9, fired.append, "b")
    executed = engine.run_stepped(1.0, seen.append, quantum=0.25)
    assert executed == 2
    assert fired == ["a", "b"]
    assert seen == pytest.approx([0.25, 0.5, 0.75, 1.0])
    assert engine.now == 1.0


def test_run_stepped_stop_aborts_after_current_slice():
    engine = Engine()
    seen = []

    def observer(now):
        seen.append(now)
        if now >= 0.5:
            engine.stop()

    engine.run_stepped(10.0, observer, quantum=0.25)
    assert seen == pytest.approx([0.25, 0.5])
    assert engine.now == 0.5


def test_run_stepped_rejects_nonpositive_quantum():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.run_stepped(1.0, lambda now: None, quantum=0.0)


# ----------------------------------------------------------------------
# same-instant slot bookkeeping (the chained-members fast path)
# ----------------------------------------------------------------------

def test_cancelled_slot_head_members_still_fire_fifo():
    # Cancelling the first event scheduled for an instant must not take
    # the events chained onto its heap slot down with it: members are
    # independent events, cancellation is strictly per-event.
    engine = Engine()
    order = []
    head = engine.schedule(1.0, order.append, "head")
    engine.schedule(1.0, order.append, "m1")
    engine.schedule(1.0, order.append, "m2")
    head.cancel()
    engine.run_until_idle()
    assert order == ["m1", "m2"]
    assert engine.now == 1.0


def test_schedule_onto_cancelled_heads_instant_still_fires():
    # A cancelled head stays in _slots until popped, so a later schedule
    # for the same instant chains onto it — and must still fire.
    engine = Engine()
    fired = []
    head = engine.schedule(1.0, fired.append, "head")
    head.cancel()
    late = engine.schedule(1.0, fired.append, "late")
    engine.run_until_idle()
    assert fired == ["late"]
    assert not late.cancelled


def test_cancelled_memberless_head_pops_cleanly():
    # The run loop's cancelled-and-memberless fast path must clear the
    # slot entry so a fresh event at the same instant gets its own slot.
    engine = Engine()
    fired = []
    head = engine.schedule(1.0, fired.append, "head")
    head.cancel()
    engine.run_until_idle()
    assert engine._slots == {}
    engine.schedule(0.0, fired.append, "fresh")  # now == 1.0
    engine.run_until_idle()
    assert fired == ["fresh"]


def test_interrupted_slot_members_requeue_and_resume():
    engine = Engine()
    order = []
    engine.schedule(1.0, engine.stop)
    for tag in ("a", "b", "c"):
        engine.schedule(1.0, order.append, tag)
    engine.run()
    assert order == []  # stop lands before the members fire
    engine.run_until_idle()
    assert order == ["a", "b", "c"]


# ----------------------------------------------------------------------
# the parallel runtime's engine surface: run_window / inject / next_id
# ----------------------------------------------------------------------

def test_run_window_lands_clock_exactly_on_barrier():
    engine = Engine()
    fired = []
    engine.schedule(0.5, fired.append, "in")
    engine.schedule(1.5, fired.append, "out")
    executed = engine.run_window(1.0)
    assert executed == 1
    assert fired == ["in"]
    assert engine.now == 1.0
    engine.run_window(2.0)
    assert fired == ["in", "out"]
    assert engine.now == 2.0


def test_run_window_rejects_backwards_barrier():
    engine = Engine()
    engine.advance(2.0)
    with pytest.raises(SimulationError):
        engine.run_window(1.0)


def test_inject_at_absolute_time_and_reject_past():
    engine = Engine()
    engine.advance(1.0)
    times = []
    engine.inject(2.5, lambda: times.append(engine.now))
    engine.run_until_idle()
    assert times == [2.5]
    with pytest.raises(SimulationError):
        engine.inject(1.0, lambda: None)


def test_injection_order_fixes_same_instant_interleaving():
    # Injections at an instant interleave with local events purely by
    # scheduling order — the property the deterministic barrier merge
    # relies on.
    engine = Engine()
    order = []
    engine.schedule(1.0, order.append, "local")
    engine.inject(1.0, order.append, "injected")
    engine.run_until_idle()
    assert order == ["local", "injected"]


def test_next_id_counters_are_engine_scoped():
    a, b = Engine(), Engine()
    assert a.next_id("tcp.isn", 1) == 1
    assert a.next_id("tcp.isn", 1) == 2
    assert a.next_id("bfd.disc", 1) == 1  # independent namespaces
    # a second engine in the same process starts from scratch: identifier
    # streams never leak between co-hosted simulations
    assert b.next_id("tcp.isn", 1) == 1


# ----------------------------------------------------------------------
# next-event queries and event scopes (adaptive parallel lookahead)
# ----------------------------------------------------------------------

def test_next_event_time_peeks_without_firing():
    engine = Engine()
    assert engine.next_event_time() is None
    engine.schedule(2.0, lambda: None)
    engine.schedule(1.0, lambda: None)
    assert engine.next_event_time() == 1.0
    assert engine.now == 0.0  # peeking never advances the clock
    engine.run_until_idle()
    assert engine.next_event_time() is None


def test_next_event_time_skips_cancelled_heads():
    engine = Engine()
    first = engine.schedule(1.0, lambda: None)
    engine.schedule(3.0, lambda: None)
    first.cancel()
    assert engine.next_event_time() == 3.0


def test_next_event_time_keeps_cancelled_head_with_live_members():
    # a cancelled slot head whose chained members are still live must
    # report the slot's instant — the members fire there
    engine = Engine()
    fired = []
    head = engine.schedule(1.0, fired.append, "head")
    engine.schedule(1.0, fired.append, "member")
    head.cancel()
    assert engine.next_event_time() == 1.0
    engine.run_until_idle()
    assert fired == ["member"]


def test_scoped_events_are_tracked_per_scope():
    engine = Engine()
    with engine.scoped("wan"):
        engine.schedule(5.0, lambda: None)
    engine.schedule(0.5, lambda: None)  # unscoped noise
    assert engine.next_event_time() == 0.5
    assert engine.next_event_time("wan") == 5.0
    assert engine.next_event_time("other") is None


def test_scope_propagates_to_events_scheduled_by_scoped_callbacks():
    engine = Engine()
    fired = []

    def chained():
        fired.append(engine.now)
        if len(fired) < 3:
            engine.schedule(1.0, chained)  # inherits ambient "wan"

    with engine.scoped("wan"):
        engine.schedule(1.0, chained)
    engine.schedule(0.25, lambda: None)
    engine.run(until=1.5)
    # the transitively scheduled hop is visible under the scope
    assert engine.next_event_time("wan") == 2.0
    engine.run_until_idle()
    assert fired == [1.0, 2.0, 3.0]
    assert engine.next_event_time("wan") is None


def test_scope_does_not_leak_to_unscoped_schedules():
    engine = Engine()

    def scoped_event():
        pass

    with engine.scoped("wan"):
        engine.schedule(1.0, scoped_event)
    engine.run_until_idle()
    # after the loop, ambient scope is restored: a fresh schedule made
    # outside any scoped() block (e.g. at a window barrier) is unscoped
    engine.schedule(1.0, lambda: None)
    assert engine.next_event_time("wan") is None
    assert engine.next_event_time() == pytest.approx(2.0)


def test_scoped_next_event_skips_cancelled_and_fired():
    engine = Engine()
    with engine.scoped("s"):
        doomed = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
    doomed.cancel()
    assert engine.next_event_time("s") == 2.0
    engine.run_until_idle()
    assert engine.next_event_time("s") is None
